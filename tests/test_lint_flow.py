"""repro.lint.flow: lattice algebra and the per-scope dataflow walk.

These tests exercise the flow engine directly — the rule-level behavior it
enables (R003/R004/R007/R009/R010) is covered in ``test_lint.py``. Here we
pin the lattice semantics the rules rely on: joins degrade and never
invent, unit algebra follows the link-budget conventions, orderedness
taints through containers, and scopes are genuinely independent.
"""

import ast

import pytest

from repro.lint import (
    AbstractValue,
    Orderedness,
    analyze_flow,
    unit_dimension,
    unit_suffix,
)
from repro.lint.flow import UNKNOWN_VALUE


def value_at(source: str, pick) -> AbstractValue:
    """Flow-analyze ``source`` and return the value of the node ``pick``
    selects from the parsed tree."""
    tree = ast.parse(source)
    info = analyze_flow(tree)
    return info.value_of(pick(tree))


def load_of(source: str, name: str) -> AbstractValue:
    """Value of the *last* Load of ``name`` in ``source``."""
    tree = ast.parse(source)
    info = analyze_flow(tree)
    loads = [
        node
        for node in ast.walk(tree)
        if isinstance(node, ast.Name)
        and node.id == name
        and isinstance(node.ctx, ast.Load)
    ]
    assert loads, f"no Load of {name!r} in fixture"
    return info.value_of(loads[-1])


class TestUnitVocabulary:
    def test_suffix_extraction(self):
        assert unit_suffix("span_km") == "km"
        assert unit_suffix("launch_power_dbm") == "dbm"
        assert unit_suffix("MAX_SPAN_KM") == "km"
        assert unit_suffix("kilometers") is None
        assert unit_suffix("total") is None

    def test_dimensions(self):
        assert unit_dimension("km") == unit_dimension("m") == "length"
        assert unit_dimension("db") == unit_dimension("dbm") == "power"
        assert unit_dimension("gbps") == "rate"
        assert unit_dimension("furlong") is None


class TestOrderednessLattice:
    def test_join_is_commutative_and_unordered_dominates(self):
        for a in Orderedness:
            for b in Orderedness:
                assert a.join(b) is b.join(a)
        assert Orderedness.ORDERED.join(Orderedness.UNORDERED) is (
            Orderedness.UNORDERED
        )
        assert Orderedness.UNKNOWN.join(Orderedness.UNORDERED) is (
            Orderedness.UNORDERED
        )
        assert Orderedness.ORDERED.join(Orderedness.UNKNOWN) is Orderedness.UNKNOWN

    def test_join_is_idempotent(self):
        for state in Orderedness:
            assert state.join(state) is state

    def test_value_join_drops_conflicting_units(self):
        km = AbstractValue(unit="km", ordered=Orderedness.ORDERED)
        s = AbstractValue(unit="s", ordered=Orderedness.ORDERED)
        assert km.join(s).unit is None
        assert km.join(km).unit == "km"


class TestAssignmentsAndAliases:
    def test_set_call_taints_the_name(self):
        value = load_of("s = set(items)\nuse(s)\n", "s")
        assert value.is_unordered
        assert value.origin == "set(...)"
        assert value.origin_line == 1

    def test_alias_chains_preserve_the_taint(self):
        value = load_of("s = {1}\nt = s\nu = t\nuse(u)\n", "u")
        assert value.is_unordered
        assert value.origin == "set literal"

    def test_rebinding_clears_the_taint(self):
        value = load_of("s = set(items)\ns = sorted(s)\nuse(s)\n", "s")
        assert value.ordered is Orderedness.ORDERED

    def test_unit_suffix_on_name_is_a_declaration(self):
        value = load_of("span_km = compute()\nuse(span_km)\n", "span_km")
        assert value.unit == "km"

    def test_unit_propagates_through_alias(self):
        value = load_of("x = span_km\nuse(x)\n", "x")
        assert value.unit == "km"

    def test_tuple_unpacking_tracks_elementwise(self):
        value = load_of("a, b = set(x), [1]\nuse(a)\n", "a")
        assert value.is_unordered
        value = load_of("a, b = set(x), [1]\nuse(b)\n", "b")
        assert value.ordered is Orderedness.ORDERED

    def test_walrus_binds(self):
        value = load_of("if (s := set(items)):\n    use(s)\n", "s")
        assert value.is_unordered

    def test_del_forgets(self):
        value = load_of("s = set(x)\ndel s\nuse(s)\n", "s")
        assert not value.is_unordered


class TestBranchJoins:
    def test_if_joins_both_arms(self):
        src = "if c:\n    s = set(x)\nelse:\n    s = [1]\nuse(s)\n"
        assert load_of(src, "s").is_unordered

    def test_if_without_else_joins_with_entry(self):
        src = "s = [1]\nif c:\n    s = set(x)\nuse(s)\n"
        assert load_of(src, "s").is_unordered

    def test_both_arms_ordered_stays_ordered(self):
        src = "if c:\n    s = [1]\nelse:\n    s = sorted(x)\nuse(s)\n"
        assert load_of(src, "s").ordered is Orderedness.ORDERED

    def test_loop_body_binding_joins_with_entry(self):
        src = "s = [1]\nfor i in items:\n    s = set(i)\nuse(s)\n"
        assert load_of(src, "s").is_unordered

    def test_try_handler_binding_joins(self):
        src = (
            "s = [1]\ntry:\n    s = set(x)\n"
            "except ValueError:\n    s = [2]\nuse(s)\n"
        )
        assert load_of(src, "s").is_unordered


class TestComprehensionsAndContainers:
    def test_set_comp_is_unordered(self):
        value = load_of("s = {f(x) for x in items}\nuse(s)\n", "s")
        assert value.is_unordered
        assert value.origin == "set comprehension"

    def test_list_comp_over_set_is_tainted(self):
        value = load_of("s = [f(x) for x in set(items)]\nuse(s)\n", "s")
        assert value.is_unordered

    def test_list_comp_over_list_is_ordered(self):
        value = load_of("s = [f(x) for x in [1, 2]]\nuse(s)\n", "s")
        assert value.ordered is Orderedness.ORDERED

    def test_comprehension_target_does_not_leak(self):
        # The comprehension's 'x' must not shadow the outer binding after.
        src = "x = [1]\ns = [x for x in set(items)]\nuse(x)\n"
        assert load_of(src, "x").ordered is Orderedness.ORDERED

    def test_dict_of_set_is_tainted(self):
        value = load_of("d = {'k': set(items)}\nuse(d)\n", "d")
        assert value.is_unordered

    def test_fstring_of_set_is_tainted(self):
        value = load_of("s = set(items)\nmsg = f'{s}'\nuse(msg)\n", "msg")
        assert value.is_unordered

    def test_dict_keys_values_follow_the_receiver(self):
        src = "d = {'k': set(items)}\nv = d.values()\nuse(v)\n"
        assert load_of(src, "v").is_unordered
        src = "d = {'k': [1]}\nv = d.values()\nuse(v)\n"
        assert load_of(src, "v").ordered is Orderedness.ORDERED


class TestUnitAlgebra:
    @pytest.mark.parametrize(
        "expr, unit",
        [
            ("span_km + tail_km", "km"),
            ("launch_dbm - loss_db", "dbm"),
            ("gain_db + launch_dbm", "dbm"),
            ("rx_dbm - tx_dbm", "db"),  # power ratio
            ("gain_db - loss_db", "db"),
            ("span_km + duration_s", None),  # conflict: R007's business
            ("span_km * 2", None),  # mult/div build new dimensions
            ("span_km / duration_s", None),
            ("span_km + offset", "km"),  # untagged operand inherits
        ],
    )
    def test_binop_units(self, expr, unit):
        value = value_at(f"y = {expr}\n", lambda t: t.body[0].value)
        assert value.unit == unit

    def test_min_max_propagate_a_single_unit(self):
        value = value_at(
            "y = min(span_km, limit_km)\n", lambda t: t.body[0].value
        )
        assert value.unit == "km"
        value = value_at(
            "y = min(span_km, duration_s)\n", lambda t: t.body[0].value
        )
        assert value.unit is None

    def test_unit_suffixed_call_tags_its_result(self):
        value = load_of("x = rtt_ms(path)\nuse(x)\n", "x")
        assert value.unit == "ms"


class TestScopesAndReturns:
    def test_function_scopes_are_independent(self):
        src = (
            "s = set(items)\n"
            "def f(s):\n"
            "    return use(s)\n"
        )
        tree = ast.parse(src)
        info = analyze_flow(tree)
        inner_load = tree.body[1].body[0].value.args[0]
        assert not info.value_of(inner_load).is_unordered

    def test_parameter_annotations_seed_the_env(self):
        src = "def f(s: set, l: list):\n    use(s)\n    use(l)\n"
        tree = ast.parse(src)
        info = analyze_flow(tree)
        s_load = tree.body[0].body[0].value.args[0]
        l_load = tree.body[0].body[1].value.args[0]
        assert info.value_of(s_load).is_unordered
        assert info.value_of(l_load).ordered is Orderedness.ORDERED

    def test_parameter_suffix_seeds_a_unit(self):
        src = "def f(span_km):\n    x = span_km\n    use(x)\n"
        tree = ast.parse(src)
        info = analyze_flow(tree)
        x_load = tree.body[0].body[1].value.args[0]
        assert info.value_of(x_load).unit == "km"

    def test_returns_are_collected_per_function(self):
        src = (
            "def f(a):\n"
            "    if a:\n        return span_km\n"
            "    return loss_db\n"
        )
        tree = ast.parse(src)
        info = analyze_flow(tree)
        func = tree.body[0]
        returned = [value.unit for _stmt, value in info.returns_of(func)]
        assert returned == ["km", "db"]

    def test_bare_return_is_a_scalar(self):
        tree = ast.parse("def f():\n    return\n")
        info = analyze_flow(tree)
        ((_stmt, value),) = info.returns_of(tree.body[0])
        assert value.ordered is Orderedness.ORDERED
        assert value.unit is None

    def test_unvisited_node_is_unknown(self):
        info = analyze_flow(ast.parse("x = 1\n"))
        assert info.value_of(ast.parse("y\n").body[0].value) is UNKNOWN_VALUE


class TestOrigins:
    def test_origin_survives_aliasing_for_messages(self):
        value = load_of("s = frozenset(items)\nt = s\nuse(t)\n", "t")
        assert value.origin == "frozenset(...)"
        assert "frozenset(...) bound at line 1" in value.describe()

    def test_describe_mentions_units(self):
        assert "'_km'" in AbstractValue(unit="km").describe()

    def test_describe_is_empty_for_unknown(self):
        assert UNKNOWN_VALUE.describe() == ""
