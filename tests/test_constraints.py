"""TC1-TC4 path constraint checkers and their link-budget consistency."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ConstraintViolation
from repro.optics.constraints import (
    PathProfile,
    amp_fix_candidates,
    budget_for_profile,
    check_path,
    max_oss_traversals,
    violations,
)


class TestPathProfile:
    def test_simple_path(self):
        p = PathProfile((20.0, 30.0))
        assert p.total_km == 50.0
        assert p.oss_traversals == 3  # source, one interior, destination
        assert p.inline_amp_count == 0

    def test_amp_adds_loopback_traversal(self):
        p = PathProfile((20.0, 30.0), inline_amp_after_span=0)
        assert p.oss_traversals == 4

    def test_runs_without_amp(self):
        p = PathProfile((20.0, 30.0, 10.0))
        runs = p.runs()
        assert len(runs) == 1
        assert runs[0].fiber_km == 60.0
        assert runs[0].oss_traversals == 4

    def test_runs_split_at_amp(self):
        p = PathProfile((40.0, 30.0, 30.0), inline_amp_after_span=0)
        first, second = p.runs()
        assert first.fiber_km == 40.0
        assert second.fiber_km == 60.0
        # Traversal conservation: the amp adds exactly one pass.
        assert first.oss_traversals + second.oss_traversals == p.oss_traversals

    def test_amp_must_be_interior(self):
        with pytest.raises(ConstraintViolation):
            PathProfile((20.0, 30.0), inline_amp_after_span=1)
        with pytest.raises(ConstraintViolation):
            PathProfile((20.0,), inline_amp_after_span=0)

    def test_empty_path_rejected(self):
        with pytest.raises(ConstraintViolation):
            PathProfile(())


class TestViolations:
    def test_compliant_short_path(self):
        assert violations(PathProfile((20.0, 20.0))) == []

    def test_sla_violation(self):
        p = PathProfile((60.0, 61.0), inline_amp_after_span=0)
        problems = violations(p)
        assert any("OC1" in v for v in problems)

    def test_distance_needs_amplifier(self):
        p = PathProfile((50.0, 45.0))  # 95 km unamplified
        problems = violations(p)
        assert any("TC1" in v for v in problems)
        # An amp after span 0 fixes it.
        assert violations(p.with_amp_after_span(0)) == []

    def test_six_oss_limit_at_120km(self):
        # §3.2: 120 km + 1 amp leaves 10 dB => 6 OSSes. Seven switching
        # points on a 120 km path must violate; six must pass.
        six_oss = PathProfile((24.0,) * 5, inline_amp_after_span=2)
        assert six_oss.oss_traversals == max_oss_traversals() + 1
        seven = PathProfile((20.0,) * 6, inline_amp_after_span=2)
        assert seven.oss_traversals == 8
        assert violations(seven)

    def test_hop_overload_without_distance_problem(self):
        # 70 km of fiber but 5 switching points: 17.5 + 6x1.5 = 26.5 dB > 20.
        p = PathProfile((14.0,) * 5)
        problems = violations(p)
        assert problems
        assert all("OC1" not in v for v in problems)

    def test_check_path_raises(self):
        with pytest.raises(ConstraintViolation):
            check_path(PathProfile((90.0,)))


class TestAmpFixCandidates:
    def test_midpoint_fixes_long_path(self):
        p = PathProfile((55.0, 55.0))
        assert amp_fix_candidates(p) == [0]

    def test_no_candidate_for_single_span(self):
        assert amp_fix_candidates(PathProfile((90.0,))) == []

    def test_existing_amp_yields_nothing(self):
        p = PathProfile((55.0, 55.0), inline_amp_after_span=0)
        assert amp_fix_candidates(p) == []

    def test_multiple_candidates_on_balanced_path(self):
        p = PathProfile((30.0, 30.0, 30.0))
        assert amp_fix_candidates(p) == [0, 1]


class TestBudgetConsistency:
    @given(
        spans=st.lists(
            st.floats(min_value=1.0, max_value=45.0), min_size=1, max_size=5
        ),
        amp_seed=st.integers(min_value=0, max_value=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_compliant_profiles_close_the_link_budget(self, spans, amp_seed):
        """Any profile the closed-form rules accept must also pass the full
        link-budget engine's power check."""
        spans_t = tuple(spans)
        amp = None
        if len(spans_t) > 1 and amp_seed % 2 == 0:
            amp = amp_seed % (len(spans_t) - 1)
        profile = PathProfile(spans_t, inline_amp_after_span=amp)
        if violations(profile):
            return  # only compliant profiles are claimed to close
        result = budget_for_profile(profile)
        # The terminal amplifier restores power to within the Rx window.
        assert result.rx_power_dbm >= -12.0 - 1e-6
        # And the amplifier count stays within TC2.
        assert result.amplifier_count <= 2
