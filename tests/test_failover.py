"""Controller failure handling (OC4) and the scenario-resolution machinery."""

import pytest

from repro.control.controller import IrisController
from repro.core.failures import Scenario
from repro.core.planner import plan_region
from repro.exceptions import ControlPlaneError, PlanningError
from repro.region.fibermap import (
    FiberMap,
    OperationalConstraints,
    RegionSpec,
)


@pytest.fixture(scope="module")
def ring_region():
    """Two DCs on a 4-hut ring: every single duct cut is survivable."""
    fmap = FiberMap()
    fmap.add_dc("A", 0, 0)
    fmap.add_dc("B", 40, 0)
    fmap.add_hut("N", 20, 12)
    fmap.add_hut("S", 20, -12)
    fmap.add_duct("A", "N", length_km=24.0)
    fmap.add_duct("N", "B", length_km=24.0)
    fmap.add_duct("A", "S", length_km=26.0)
    fmap.add_duct("S", "B", length_km=26.0)
    return RegionSpec(
        fiber_map=fmap,
        dc_fibers={"A": 4, "B": 4},
        constraints=OperationalConstraints(failure_tolerance=1),
    )


@pytest.fixture(scope="module")
def ring_plan(ring_region):
    return plan_region(ring_region)


class TestScenarioResolution:
    def test_no_failures_is_base(self, ring_plan):
        assert ring_plan.scenario_for_failures(set()) == Scenario()

    def test_unused_duct_cut_keeps_base_paths(self, ring_plan):
        # The southern detour is unused in the base scenario.
        scenario = ring_plan.scenario_for_failures({("A", "S")})
        assert scenario == Scenario()

    def test_used_duct_cut_resolves_to_its_scenario(self, ring_plan):
        scenario = ring_plan.scenario_for_failures({("A", "N")})
        assert scenario == Scenario({("A", "N")})
        paths = ring_plan.topology.scenario_paths[scenario]
        assert paths[("A", "B")] == ("A", "S", "B")

    def test_exceeding_tolerance_raises(self, ring_plan):
        with pytest.raises(PlanningError, match="tolerance"):
            ring_plan.scenario_for_failures({("A", "N"), ("A", "S")})


class TestControllerFailover:
    def test_failover_moves_circuits(self, ring_plan):
        controller = IrisController(ring_plan)
        controller.apply_demands({("A", "B"): 16_000.0})
        north = controller.registry.get("oss:N").device
        south = controller.registry.get("oss:S").device
        assert north.connections() and not south.connections()

        report = controller.report_duct_failure("A", "N")
        assert report.verified
        assert report.drained_pairs == (("A", "B"),)
        assert south.connections() and not north.connections()
        assert controller.audit() == []

    def test_repair_restores_shortest_path(self, ring_plan):
        controller = IrisController(ring_plan)
        controller.apply_demands({("A", "B"): 16_000.0})
        controller.report_duct_failure("A", "N")
        report = controller.report_duct_repair("A", "N")
        assert report.verified
        north = controller.registry.get("oss:N").device
        assert north.connections()
        assert controller.scenario == Scenario()

    def test_unused_duct_failure_is_noop(self, ring_plan):
        controller = IrisController(ring_plan)
        controller.apply_demands({("A", "B"): 16_000.0})
        report = controller.report_duct_failure("A", "S")
        assert not report.changed
        assert ("A", "S") in controller.failed_ducts

    def test_second_cut_beyond_tolerance_rejected(self, ring_plan):
        controller = IrisController(ring_plan)
        controller.apply_demands({("A", "B"): 16_000.0})
        controller.report_duct_failure("A", "N")
        with pytest.raises(ControlPlaneError, match="tolerance"):
            controller.report_duct_failure("S", "B")

    def test_failover_with_two_cut_tolerance(self, toy_region):
        # The toy tree tolerates nothing: even tolerance-0 plans expose
        # scenario_for_failures for unused ducts only.
        plan = plan_region(toy_region)
        assert plan.scenario_for_failures(set()) == Scenario()
        with pytest.raises(PlanningError):
            plan.scenario_for_failures({("H1", "H2")})
