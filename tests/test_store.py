"""repro.store: canonical encoding, CAS robustness, and sweep resume.

The acceptance bar for the store is behavioral, not structural:

* a cached plan loaded back is **bit-identical** (``plan_to_json``
  equality) to a freshly planned one, including under ``jobs > 1``;
* corruption of any shape degrades to a miss-and-replan, never a crash
  or a wrong hit;
* concurrent writers putting the same key converge on identical bytes;
* a sweep killed mid-campaign and resumed against the same store replans
  only the incomplete cells and produces byte-identical records.
"""

import json
import multiprocessing
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis.designspace import SweepPoint, run_sweep
from repro.core.planner import plan_region
from repro.designs import get_design
from repro.exceptions import ReproError
from repro.serialize import plan_to_json
from repro.store import (
    PlanStore,
    STORE_SCHEMA_VERSION,
    artifact_key,
    canonical_json,
    digest,
    plan_key,
    sha256_hex,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


class TestCanonical:
    def test_key_order_and_whitespace_invariant(self):
        assert canonical_json({"b": 1, "a": [1.5, "x"]}) == (
            canonical_json({"a": [1.5, "x"], "b": 1})
        )
        assert " " not in canonical_json({"a": [1, 2], "b": {"c": 3}})

    def test_floats_round_trip_exactly(self):
        values = [0.1, 1 / 3, 2.0**-45, 1e300]
        assert json.loads(canonical_json(values)) == values

    def test_non_json_values_rejected(self):
        with pytest.raises(ReproError):
            canonical_json({"x": float("nan")})
        with pytest.raises(ReproError):
            canonical_json({"x": object()})

    def test_digest_is_sha256_of_canonical_text(self):
        value = {"k": [1, 2, 3]}
        assert digest(value) == sha256_hex(canonical_json(value))
        assert len(digest(value)) == 64


class TestKeys:
    def test_key_is_input_addressed(self, toy_region):
        base = plan_key(design="iris", region=toy_region)
        assert base == plan_key(design="iris", region=toy_region)
        assert base != plan_key(design="eps", region=toy_region)
        assert base != plan_key(
            design="iris", region=toy_region, config={"validate": False}
        )

    def test_artifact_key_covers_versions(self):
        key = artifact_key("sweep-cell", {"map_index": 0})
        assert key != artifact_key("sweep-cell", {"map_index": 1})
        assert key != artifact_key("plan", {"map_index": 0})


class TestPlanStoreCas:
    def test_get_on_empty_store_is_a_miss(self, tmp_path):
        store = PlanStore(tmp_path / "store")
        assert store.get("0" * 64) is None
        assert store.misses == 1

    def test_put_get_round_trip(self, tmp_path):
        store = PlanStore(tmp_path)
        payload = {"answer": 42, "nested": {"xs": [1, 2]}}
        key = "ab" * 32
        assert store.put(key, payload, kind="test") == key
        assert store.get(key) == payload
        assert (store.hits, store.puts) == (1, 1)

    def test_malformed_key_rejected(self, tmp_path):
        store = PlanStore(tmp_path)
        with pytest.raises(ReproError):
            store.get("not-a-key")
        with pytest.raises(ReproError):
            store.put("AB" * 32, {})  # uppercase hex is not canonical

    @pytest.mark.parametrize(
        "corruption",
        [
            lambda text: text[: len(text) // 2],  # truncation (torn write)
            lambda text: text.replace("42", "43"),  # payload bit rot
            lambda text: "not json at all",
            lambda text: '{"key": "wrong"}',
        ],
    )
    def test_corrupted_blob_degrades_to_miss(self, tmp_path, corruption):
        store = PlanStore(tmp_path)
        key = "cd" * 32
        store.put(key, {"value": 42})
        path = store.blob_path(key)
        path.write_text(corruption(path.read_text()))
        assert store.get(key) is None
        assert store.corrupt == 1 and store.misses == 1

    def test_lost_manifest_does_not_lose_blobs(self, tmp_path):
        store = PlanStore(tmp_path)
        key = "ef" * 32
        store.put(key, {"v": 1})
        store.manifest_path.unlink()
        assert store.get(key) == {"v": 1}

    def test_gc_respects_manifest(self, tmp_path):
        store = PlanStore(tmp_path)
        live = "11" * 32
        store.put(live, {"keep": True})
        # An orphan blob (valid bytes, no manifest entry) and a stale tmp.
        orphan = "22" * 32
        orphan_path = store.blob_path(orphan)
        orphan_path.parent.mkdir(parents=True, exist_ok=True)
        orphan_path.write_text("{}")
        tmp_file = orphan_path.with_name("x.123.tmp")
        tmp_file.write_text("partial")
        # A dead manifest entry (entry, no blob).
        entries = store._load_manifest()
        entries["33" * 32] = {"kind": "ghost", "size": 0, "content_sha256": ""}
        store._write_manifest(entries)

        result = store.gc()
        assert result.removed_blobs == 1
        assert result.dropped_entries == 1
        assert result.reclaimed_bytes > 0
        assert not orphan_path.exists()
        assert not tmp_file.exists()
        assert store.get(live) == {"keep": True}
        assert store.evictions == 1

    def test_verify_reports_and_repairs(self, tmp_path):
        store = PlanStore(tmp_path)
        good, bad = "44" * 32, "55" * 32
        store.put(good, {"ok": 1})
        store.put(bad, {"ok": 2})
        store.blob_path(bad).write_text("garbage")
        problems = store.verify()
        assert len(problems) == 1 and bad in problems[0]
        assert store.verify(repair=True)
        assert store.verify() == []
        assert store.get(good) == {"ok": 1}
        assert not store.blob_path(bad).exists()

    def test_stats_inventory(self, tmp_path):
        store = PlanStore(tmp_path)
        store.put("66" * 32, {"a": 1}, kind="plan")
        store.put("77" * 32, {"b": 2}, kind="plan")
        store.put("88" * 32, {"c": 3}, kind="topology")
        stats = store.stats()
        assert stats.entries == stats.blobs == 3
        assert stats.kinds == {"plan": 2, "topology": 1}
        assert stats.total_bytes > 0
        assert stats.orphan_blobs == 0
        payload = stats.to_dict()
        assert payload["session"]["puts"] == 3


def _concurrent_put(args):
    root, key, payload = args
    store = PlanStore(root)
    store.put(key, payload, kind="race")
    return store.blob_path(key).read_text()


class TestConcurrentWriters:
    def test_same_key_writers_converge_on_identical_bytes(self, tmp_path):
        key = "99" * 32
        payload = {"value": list(range(50))}
        with multiprocessing.get_context("spawn").Pool(2) as pool:
            texts = pool.map(
                _concurrent_put, [(str(tmp_path), key, payload)] * 4
            )
        assert len(set(texts)) == 1
        store = PlanStore(tmp_path)
        assert store.get(key) == payload
        assert store.verify() == []


class TestPlanRegionWithStore:
    def test_cached_plan_is_bit_identical(self, toy_region, tmp_path):
        store = PlanStore(tmp_path)
        fresh = plan_region(toy_region)
        cold = plan_region(toy_region, store=store)
        warm = plan_region(toy_region, store=store)
        assert (store.puts, store.hits) == (1, 1)
        assert plan_to_json(warm) == plan_to_json(fresh)
        assert plan_to_json(warm, full=True) == plan_to_json(cold, full=True)

    def test_cached_plan_matches_parallel_planner(self, tmp_path):
        """The cache key excludes jobs: a serial put serves a jobs>1 call."""
        from repro.region.catalog import make_region

        region = make_region(map_index=0, n_dcs=4, dc_fibers=4).spec
        store = PlanStore(tmp_path)
        cold = plan_region(region, store=store, jobs=1)
        warm = plan_region(region, store=store, jobs=2)
        assert store.hits == 1
        assert plan_to_json(warm, full=True) == plan_to_json(cold, full=True)
        assert plan_to_json(warm) == plan_to_json(plan_region(region, jobs=2))

    def test_corrupted_blob_triggers_replan_and_heals(
        self, toy_region, tmp_path
    ):
        store = PlanStore(tmp_path)
        plan_region(toy_region, store=store)
        key = plan_key(
            design="iris",
            region=toy_region,
            config={"prune_enumeration": True, "validate": True},
        )
        blob = store.blob_path(key)
        blob.write_text(blob.read_text()[:100])  # torn write
        replanned = plan_region(toy_region, store=store)
        assert store.corrupt == 1 and store.puts == 2
        assert plan_to_json(replanned) == plan_to_json(plan_region(toy_region))
        # The replan healed the entry: next call is a clean hit.
        plan_region(toy_region, store=store)
        assert store.hits == 1

    def test_loaded_plan_validates_clean(self, toy_region, tmp_path):
        store = PlanStore(tmp_path)
        plan_region(toy_region, store=store)
        loaded = plan_region(toy_region, store=store)
        assert loaded.validate() == []
        assert loaded.inventory() == plan_region(toy_region).inventory()


class TestDesignsWithStore:
    def test_iris_design_uses_the_store(self, toy_region, tmp_path):
        store = PlanStore(tmp_path)
        cold = get_design("iris", store=store).plan(toy_region)
        warm = get_design("iris", store=store).plan(toy_region)
        assert store.hits == 1
        assert warm == cold == get_design("iris").plan(toy_region)

    def test_eps_design_caches_the_topology(self, toy_region, tmp_path):
        store = PlanStore(tmp_path)
        cold = get_design("eps", store=store).plan(toy_region)
        warm = get_design("eps", store=store).plan(toy_region)
        assert store.hits == 1
        assert store.stats().kinds == {"topology": 1}
        assert warm == cold == get_design("eps").plan(toy_region)

    def test_hybrid_shares_the_iris_plan_entry(self, toy_region, tmp_path):
        store = PlanStore(tmp_path)
        get_design("iris", store=store).plan(toy_region)
        hybrid = get_design("hybrid", store=store).plan(toy_region)
        assert store.hits == 1  # hybrid loaded the cached Iris plan
        assert hybrid == get_design("hybrid").plan(toy_region)


SWEEP_POINTS = [
    SweepPoint(map_index=0, n_dcs=4, dc_fibers=4, wavelengths=40),
    SweepPoint(map_index=0, n_dcs=4, dc_fibers=4, wavelengths=64),
    SweepPoint(map_index=1, n_dcs=4, dc_fibers=4, wavelengths=40),
]


class TestSweepResume:
    def test_warm_sweep_is_record_identical(self, tmp_path):
        store = PlanStore(tmp_path)
        cold = run_sweep(SWEEP_POINTS, store=store)
        assert store.puts == 2  # two distinct (map, n, f) cells
        warm = run_sweep(SWEEP_POINTS, store=store)
        assert store.hits == 2
        assert warm == cold == run_sweep(SWEEP_POINTS)

    def test_warm_sweep_matches_parallel_cold_sweep(self, tmp_path):
        store = PlanStore(tmp_path)
        cold = run_sweep(SWEEP_POINTS, jobs=2, store=store)
        warm = run_sweep(SWEEP_POINTS, jobs=2, store=store)
        assert store.hits == 2
        assert warm == cold

    def test_killed_sweep_resumes_with_only_incomplete_cells(self, tmp_path):
        """Kill the process after the first cell checkpoint, then resume."""
        script = textwrap.dedent(
            """
            import os
            from repro.analysis.designspace import SweepPoint, run_sweep
            from repro.store import PlanStore

            class DyingStore(PlanStore):
                def put(self, key, payload, kind="artifact"):
                    super().put(key, payload, kind=kind)
                    os._exit(17)  # simulate a mid-campaign crash

            points = [
                SweepPoint(0, 4, 4, 40),
                SweepPoint(0, 4, 4, 64),
                SweepPoint(1, 4, 4, 40),
            ]
            run_sweep(points, store=DyingStore(os.environ["STORE_DIR"]))
            """
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            env={
                "PYTHONPATH": str(REPO_ROOT / "src"),
                "STORE_DIR": str(tmp_path),
                "PATH": "/usr/bin:/bin",
            },
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 17, proc.stderr

        store = PlanStore(tmp_path)
        assert store.stats().entries == 1  # exactly one cell survived
        resumed = run_sweep(SWEEP_POINTS, store=store)
        # Resume replanned only the incomplete cell.
        assert store.hits == 1 and store.puts == 1
        assert resumed == run_sweep(SWEEP_POINTS)

    def test_stale_cell_payload_replans(self, tmp_path):
        from repro.analysis.designspace import _cell_key

        store = PlanStore(tmp_path)
        baseline = run_sweep(SWEEP_POINTS[:1], store=store)
        key = _cell_key(SWEEP_POINTS[0], failure_tolerance=2)
        store.put(key, {"instance": "bogus"}, kind="sweep-cell")
        records = run_sweep(SWEEP_POINTS[:1], store=store)
        assert records == baseline
        assert store.stats().entries == 1


class TestObsIntegration:
    def test_store_traffic_flows_through_obs_spans(self, tmp_path):
        from repro import obs

        store = PlanStore(tmp_path)
        with obs.tracing("store-audit") as tracer:
            store.put("aa" * 32, {"v": 1}, kind="plan")
            store.get("aa" * 32)
            store.get("bb" * 32)
            store.gc()
        rows = {row.name: row for row in obs.aggregate(tracer.record())}
        assert rows["store.put"].counters["store.puts"] == 1
        assert rows["store.put"].counters["store.bytes_written"] > 0
        assert rows["store.get"].counters["store.hits"] == 1
        assert rows["store.get"].counters["store.misses"] == 1
        assert rows["store.get"].counters["store.bytes_read"] > 0
        assert "store.gc" in rows


class TestStoreSchemaVersioning:
    def test_schema_version_participates_in_keys(self, toy_region, monkeypatch):
        import repro.store.keys as keys_mod

        before = plan_key(design="iris", region=toy_region)
        monkeypatch.setattr(keys_mod, "STORE_SCHEMA_VERSION", STORE_SCHEMA_VERSION + 1)
        assert plan_key(design="iris", region=toy_region) != before
