"""Design baselines: port model, EPS, centralized, wavelength, hybrid."""

import pytest

from repro.cost.estimator import Inventory, estimate_cost
from repro.cost.pricebook import PriceBook
from repro.designs import Design, available_designs, get_design
from repro.designs.centralized import CentralizedDesign
from repro.designs.distributed import (
    balanced_groups,
    cross_group_pairs,
    full_mesh_pairs,
    intra_group_pairs,
)
from repro.designs.eps import eps_inventory
from repro.designs.hybrid import hybridize
from repro.designs.portmodel import PortModel
from repro.designs.wavelength import (
    combinable_residual_fibers,
    max_worst_case_residual_wavelengths,
    wavelength_vs_fiber_tradeoff,
    worst_case_residual_wavelengths,
)
from repro.exceptions import ReproError


class TestPortModel:
    def test_centralized_is_2np(self):
        pm = PortModel(n_dcs=16, ports_per_dc=3)
        assert pm.point(1).total_ports == 2 * 16 * 3

    def test_total_is_g_plus_1_np(self):
        pm = PortModel(n_dcs=16)
        for g in pm.valid_groups():
            assert pm.point(g).total_ports == (g + 1) * 16

    def test_hub_capacity_independent_of_group_size(self):
        # §2.4: "each group hub needs to support the same capacity
        # irrespective of how distributed or centralized the topology is."
        pm = PortModel(n_dcs=16, ports_per_dc=2)
        for g in pm.valid_groups():
            assert pm.point(g).hub_ports == g * 16 * 2

    def test_mesh_roughly_7x_centralized(self):
        # Fig 7: "the relative cost of supporting a fully meshed
        # distributed topology is roughly 7x the centralized" (exact
        # closed form: (N+1)/2 = 8.5 for N=16).
        ratio = PortModel(n_dcs=16).mesh_vs_centralized_ratio()
        assert 6.0 <= ratio <= 9.0

    def test_sr_variant_cheaper_than_plain_electrical(self):
        pm = PortModel(n_dcs=16)
        for g in pm.valid_groups():
            point = pm.point(g)
            assert point.cost_electrical_sr <= point.cost_electrical

    def test_optical_much_cheaper_when_distributed(self):
        pm = PortModel(n_dcs=16)
        mesh = pm.point(16)
        assert mesh.cost_optical < mesh.cost_electrical / 4

    def test_optical_nearly_flat_across_spectrum(self):
        # Fig 7's third column: optical cost grows far slower than
        # electrical as the topology distributes.
        pm = PortModel(n_dcs=16)
        optical_growth = pm.point(16).cost_optical / pm.point(1).cost_optical
        electrical_growth = (
            pm.point(16).cost_electrical / pm.point(1).cost_electrical
        )
        assert optical_growth < electrical_growth / 3

    def test_invalid_groups_rejected(self):
        pm = PortModel(n_dcs=16)
        with pytest.raises(ReproError):
            pm.point(3)  # does not divide 16
        with pytest.raises(ReproError):
            pm.point(0)


class TestGroups:
    def test_full_mesh_count(self):
        assert len(full_mesh_pairs([f"D{i}" for i in range(6)])) == 15

    def test_balanced_groups(self):
        groups = balanced_groups([f"D{i}" for i in range(6)], 3)
        assert [len(g) for g in groups] == [2, 2, 2]

    def test_uneven_groups_differ_by_at_most_one(self):
        groups = balanced_groups([f"D{i}" for i in range(7)], 3)
        sizes = sorted(len(g) for g in groups)
        assert sizes == [2, 2, 3]

    def test_pair_partition_is_complete(self):
        dcs = [f"D{i}" for i in range(6)]
        groups = balanced_groups(dcs, 2)
        inter = cross_group_pairs(groups)
        intra = intra_group_pairs(groups)
        assert sorted(inter + intra) == sorted(full_mesh_pairs(dcs))

    def test_too_many_groups_rejected(self):
        with pytest.raises(ReproError):
            balanced_groups(["A"], 2)


class TestEps:
    def test_toy_eps_counts(self, toy_region):
        from repro.core.topology import plan_topology

        topology = plan_topology(toy_region)
        inv = eps_inventory(toy_region, topology)
        # §3.4: T_E = 2 * F_E * lambda = 4800.
        assert inv.dc_transceivers + inv.innetwork_transceivers == 4800
        assert inv.dc_transceivers == 1600
        assert inv.fiber_pair_spans == 60

    def test_toy_cost_ratio_matches_paper(self, toy_region):
        """§3.4: 'the electrical design costs 2.7x more than the optical'."""
        from repro.core.planner import plan_region
        from repro.core.topology import plan_topology

        plan = plan_region(toy_region)
        iris = estimate_cost(plan.inventory())
        eps = estimate_cost(eps_inventory(toy_region, plan.topology))
        ratio = eps.total / iris.total
        assert ratio == pytest.approx(2.7, abs=0.45)

    def test_toy_fiber_and_transceiver_only_ratio(self, toy_region):
        """The §3.4 footnote recomputes the ratio from fiber+transceivers
        only and lands at 2.73; our residual differs by 2 fiber-pairs on
        the trunk (76 vs 78), giving 2.74."""
        from repro.core.planner import plan_region

        plan = plan_region(toy_region)
        prices = PriceBook.default()
        t_e, f_e = 4800, 60
        t_o = plan.inventory().dc_transceivers
        f_o = plan.total_fiber_pair_spans()
        assert (t_o, f_o) == (1600, 76)
        ratio = (prices.transceiver_dci * t_e + prices.fiber_pair_span * f_e) / (
            prices.transceiver_dci * t_o + prices.fiber_pair_span * f_o
        )
        assert ratio == pytest.approx(2.74, abs=0.02)


class TestCentralized:
    def test_latency_via_hub(self, toy_region):
        design = CentralizedDesign(toy_region, hubs=("H1",))
        # DC1-DC3 via H1: 10 + (20 + 10) = 40 km (equals the direct route).
        assert design.pair_distance_km("DC1", "DC3") == pytest.approx(40.0)
        # DC3-DC4 via the far hub H1: (20 + 10) * 2 = 60 km vs 20 direct.
        assert design.pair_distance_km("DC3", "DC4") == pytest.approx(60.0)

    def test_two_hubs_take_the_better(self, toy_region):
        design = CentralizedDesign(toy_region, hubs=("H1", "H2"))
        assert design.pair_distance_km("DC3", "DC4") == pytest.approx(20.0)

    def test_meets_sla(self, toy_region):
        assert CentralizedDesign(toy_region, hubs=("H1", "H2")).meets_sla()

    def test_inventory_single_hub_matches_port_model(self, toy_region):
        # §2.4: centralized => 2 N P ports total.
        inv = CentralizedDesign(toy_region, hubs=("H1",)).inventory()
        n_p = sum(toy_region.transceivers(dc) for dc in toy_region.dcs)
        assert inv.dc_transceivers + inv.innetwork_transceivers == 2 * n_p

    def test_redundant_doubles_spokes(self, toy_region):
        design = CentralizedDesign(toy_region, hubs=("H1", "H2"))
        single = design.inventory(redundant=False)
        double = design.inventory(redundant=True)
        assert double.dc_transceivers == 2 * single.dc_transceivers

    def test_bad_hub_count_rejected(self, toy_region):
        with pytest.raises(Exception):
            CentralizedDesign(toy_region, hubs=())
        with pytest.raises(Exception):
            CentralizedDesign(toy_region, hubs=("H1", "H2", "H1"))


class TestWavelength:
    def test_worst_case_peak(self):
        # Appendix B: maximum residual is lambda * n / 4 at D = lambda*n/2.
        n, lam = 8, 40
        peak = max_worst_case_residual_wavelengths(n, lam)
        assert peak == pytest.approx(lam * n / 4)
        at_half = worst_case_residual_wavelengths(lam * n / 2, n, lam)
        assert at_half == pytest.approx(peak)
        # Any other demand is below the peak.
        for d in (0, lam, lam * n / 4, lam * n * 0.9, lam * n):
            assert worst_case_residual_wavelengths(d, n, lam) <= peak + 1e-9

    def test_combinable_is_ceil_n_over_4(self):
        assert combinable_residual_fibers(1) == 1
        assert combinable_residual_fibers(4) == 1
        assert combinable_residual_fibers(5) == 2
        assert combinable_residual_fibers(19) == 5

    def test_fiber_switching_wins_at_paper_prices(self, small_plan):
        tradeoff = wavelength_vs_fiber_tradeoff(small_plan)
        assert tradeoff.fiber_switching_wins

    def test_invalid_inputs(self):
        with pytest.raises(ReproError):
            worst_case_residual_wavelengths(-1, 4, 40)
        with pytest.raises(ReproError):
            combinable_residual_fibers(-1)


class TestHybrid:
    def test_hybrid_reduces_residual_fiber(self, small_plan):
        hybrid = hybridize(small_plan)
        assert hybrid.residual_spans_saved > 0
        assert 0.0 < hybrid.residual_reduction <= 1.0

    def test_each_pair_merges_at_most_once(self, small_plan):
        hybrid = hybridize(small_plan)
        seen = set()
        for merge in hybrid.merges:
            for pair in merge.pairs:
                assert pair not in seen  # one wavelength device per path
                seen.add(pair)

    def test_merge_respects_max_combine(self, small_plan):
        hybrid = hybridize(small_plan, max_combine=4)
        assert all(len(m.pairs) <= 4 for m in hybrid.merges)

    def test_hybrid_inventory_never_more_fiber(self, small_plan):
        base = small_plan.inventory()
        hybrid = hybridize(small_plan).inventory()
        assert hybrid.fiber_pair_spans <= base.fiber_pair_spans
        assert hybrid.oxc_ports > 0

    def test_hybrid_cost_close_to_iris(self, small_plan):
        # Fig 12(a): "virtually identical costs" of Iris and hybrid.
        iris = estimate_cost(small_plan.inventory()).total
        hybrid = estimate_cost(hybridize(small_plan).inventory()).total
        assert hybrid == pytest.approx(iris, rel=0.15)


class TestDesignRegistry:
    def test_registry_lists_all_baselines(self):
        assert available_designs() == [
            "centralized",
            "eps",
            "hybrid",
            "iris",
            "robust",
            "semidistributed",
        ]

    def test_every_kind_satisfies_protocol(self, toy_region):
        for kind in available_designs():
            design = get_design(kind)
            assert isinstance(design, Design)
            assert design.name == kind
            inv = design.plan(toy_region)
            assert isinstance(inv, Inventory)
            assert inv.dc_transceivers > 0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError, match="unknown design"):
            get_design("quantum")

    def test_eps_matches_free_function(self, toy_region):
        from repro.core.topology import plan_topology

        via_registry = get_design("eps").plan(toy_region)
        direct = eps_inventory(toy_region, plan_topology(toy_region))
        assert via_registry == direct

    def test_iris_matches_plan_region(self, toy_region):
        from repro.core.planner import plan_region

        via_registry = get_design("iris").plan(toy_region)
        assert via_registry == plan_region(toy_region).inventory()

    def test_hybrid_matches_hybridize(self, small_plan, small_region_instance):
        via_registry = get_design("hybrid", max_combine=4).plan(
            small_region_instance.spec
        )
        assert via_registry == hybridize(small_plan, max_combine=4).inventory()

    def test_options_forwarded(self, toy_region):
        inv = get_design("centralized", hubs=("H1",)).plan(toy_region)
        direct = CentralizedDesign(toy_region, hubs=("H1",)).inventory()
        assert inv == direct

    def test_legacy_designers_satisfy_protocol(self, toy_region):
        design = CentralizedDesign(toy_region, hubs=("H1", "H2"))
        assert isinstance(design, Design)
        assert design.plan(toy_region) == design.inventory()

    def test_legacy_plan_rebinds_region(self, toy_region, toy_map):
        from repro.region.fibermap import OperationalConstraints, RegionSpec

        other = RegionSpec(
            fiber_map=toy_map,
            dc_fibers={f"DC{i}": 5 for i in range(1, 5)},
            constraints=OperationalConstraints(failure_tolerance=0),
        )
        design = CentralizedDesign(toy_region, hubs=("H1",))
        rebound = CentralizedDesign(other, hubs=("H1",))
        assert design.plan(other) == rebound.inventory()

    def test_duplicate_registration_rejected(self):
        from repro.designs.base import register_design

        with pytest.raises(ReproError, match="already registered"):

            @register_design("iris")
            class Clone:  # pragma: no cover - rejected before use
                pass
