"""Property-based tests: planner invariants on randomized small regions.

These exercise the full Algorithm 1 -> Algorithm 2 -> cut-through ->
residual pipeline on generated maps and assert the structural invariants the
paper's correctness argument rests on, independent of any specific topology.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.planner import plan_region
from repro.core.topology import plan_topology
from repro.exceptions import InfeasibleRegionError, RegionError
from repro.region.fibermap import (
    OperationalConstraints,
    RegionSpec,
    duct_key,
)
from repro.region.placement import place_dcs
from repro.region.synthetic import SyntheticMapConfig, generate_fiber_map


def build_random_region(seed: int, n_dcs: int, tolerance: int) -> RegionSpec | None:
    """A small random region, or None when placement cannot fit."""
    config = SyntheticMapConfig(
        extent_km=30.0,
        grid_step_km=10.0,
        jitter_km=2.0,
    )
    fmap = generate_fiber_map(seed=seed, config=config)
    try:
        dcs = place_dcs(fmap, n_dcs, seed=seed * 31 + 7, extent_km=30.0)
    except RegionError:
        return None
    rng = random.Random(seed)
    return RegionSpec(
        fiber_map=fmap,
        dc_fibers={dc: rng.choice((2, 4, 8)) for dc in dcs},
        constraints=OperationalConstraints(failure_tolerance=tolerance),
    )


region_params = st.tuples(
    st.integers(min_value=0, max_value=400),  # seed
    st.integers(min_value=2, max_value=4),  # n_dcs
    st.integers(min_value=0, max_value=1),  # tolerance
)


class TestPlannerInvariants:
    @given(params=region_params)
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_full_pipeline_invariants(self, params):
        seed, n_dcs, tolerance = params
        region = build_random_region(seed, n_dcs, tolerance)
        if region is None:
            return
        try:
            plan = plan_region(region)
        except InfeasibleRegionError:
            return  # random map genuinely cannot tolerate the cuts

        # 1. Every scenario path of every pair is constraint-clean.
        assert plan.validate() == []

        # 2. Edge capacity never exceeds the theoretical hose ceiling
        #    (half the total DC capacity, both directions through one cut).
        ceiling = sum(region.dc_fibers.values())
        for cap in plan.topology.edge_capacity.values():
            assert 0 < cap <= ceiling

        # 3. Spoke ducts at each DC carry at least min(f_dc, best partner)
        #    across its access ducts combined.
        base = plan.topology.base_paths
        for (a, b), path in base.items():
            first = duct_key(path[0], path[1])
            assert plan.topology.edge_capacity[first] >= min(
                region.fibers(a), region.fibers(b)
            )

        # 4. Residual fibers: exactly one per pair along its base path.
        assert sum(plan.residual.values()) == sum(
            len(p) - 1 for p in base.values()
        )

        # 5. Effective paths preserve physical length (bypasses never
        #    reroute) and never gain amp without a site record.
        for (scenario, pair), eff in plan.effective_paths.items():
            physical = plan.topology.scenario_paths[scenario][pair]
            assert eff.total_km == pytest.approx(
                region.fiber_map.path_length(physical)
            )
            if eff.amp_node is not None:
                assert plan.amplifiers.site_counts.get(eff.amp_node, 0) > 0

        # 6. The inventory is internally consistent.
        inv = plan.inventory()
        assert inv.fiber_pair_spans == plan.total_fiber_pair_spans()
        assert inv.dc_transceivers == sum(
            region.fibers(dc) * region.wavelengths_per_fiber
            for dc in region.dcs
        )

    @given(params=region_params)
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_tolerance_monotonicity(self, params):
        """More failure tolerance never cheapens the network."""
        seed, n_dcs, _ = params
        region0 = build_random_region(seed, n_dcs, 0)
        region1 = build_random_region(seed, n_dcs, 1)
        if region0 is None or region1 is None:
            return
        topo0 = plan_topology(region0)
        try:
            topo1 = plan_topology(region1)
        except InfeasibleRegionError:
            return
        assert topo1.total_fiber_pairs() >= topo0.total_fiber_pairs()
        for duct, cap in topo0.edge_capacity.items():
            assert topo1.edge_capacity.get(duct, 0) >= cap

    @given(
        seed=st.integers(min_value=0, max_value=400),
        factor=st.integers(min_value=2, max_value=3),
    )
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_capacity_scales_linearly_with_uniform_fibers(self, seed, factor):
        """Hose max-flow scales linearly when all DC capacities scale."""
        base = build_random_region(seed, 3, 0)
        if base is None:
            return
        scaled = RegionSpec(
            fiber_map=base.fiber_map,
            dc_fibers={dc: f * factor for dc, f in base.dc_fibers.items()},
            constraints=base.constraints,
        )
        topo_base = plan_topology(base)
        topo_scaled = plan_topology(scaled)
        for duct, cap in topo_base.edge_capacity.items():
            assert topo_scaled.edge_capacity[duct] == cap * factor


class TestGeneratorInvariants:
    @given(seed=st.integers(min_value=0, max_value=2000))
    @settings(max_examples=20, deadline=None)
    def test_generated_maps_are_robust(self, seed):
        fmap = generate_fiber_map(seed)
        import networkx as nx

        assert nx.is_connected(fmap.graph)
        assert nx.edge_connectivity(fmap.graph) >= 3
        for u, v in fmap.ducts:
            geo = fmap.position(u).distance_to(fmap.position(v))
            # Route factor: fiber at least as long as the crow flies
            # (tiny absolute tolerance for clamped jitter at borders).
            assert fmap.duct_length(u, v) >= geo * 0.99 - 0.3
