"""The flow-centric traffic generator and its statistical contracts.

The generator is statistical code, so the suite pins its claims three
ways: hypothesis property tests (support, CDF monotonicity, seeded
determinism, relabeling equivariance), golden quantile pins for every
named distribution (platform/refactor drift guards), and a two-process
byte-identity check on the encoded flow stream.
"""

import random
import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import SimulationError
from repro.simulation.traffic import heavy_tailed_matrix
from repro.simulation.trafficgen import (
    IA_BURSTY,
    IA_SMOOTH,
    INTERARRIVALS,
    ExponentialInterarrival,
    FlowGenerator,
    InterarrivalDistribution,
    PairLocality,
    derive_seed,
    encode_flow_stream,
    flow_stream_digest,
    generate_timeline_flows,
)

DCS = [f"DC{i}" for i in range(1, 5)]


def _matrix(seed: int = 5):
    return heavy_tailed_matrix(DCS, random.Random(seed))


class TestInterarrivalCatalog:
    def test_named_shapes(self):
        assert set(INTERARRIVALS) == {"poisson", "smooth", "bursty"}

    def test_bursty_is_heavy_tailed(self):
        # Most gaps far below the mean, rare gaps far above: CV > 1.
        assert IA_BURSTY.quantile(0.5) < 0.1
        assert IA_BURSTY.quantile(0.99) > 10.0

    def test_smooth_is_concentrated(self):
        assert 0.5 <= IA_SMOOTH.quantile(0.05)
        assert IA_SMOOTH.quantile(0.95) <= 2.0

    @given(u=st.floats(min_value=0.0, max_value=0.999999))
    @settings(max_examples=60, deadline=None)
    def test_quantile_support_and_monotonicity(self, u):
        for dist in (IA_SMOOTH, IA_BURSTY):
            lo = dist.points[0][0]
            hi = dist.points[-1][0]
            q = dist.quantile(u)
            assert lo * 0.99 <= q <= hi * 1.01
            # Monotone: a larger u never yields a smaller gap.
            if u < 0.99:
                assert dist.quantile(u + 1e-6) >= q - 1e-12

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_sampling_deterministic_per_seed(self, seed):
        for dist in INTERARRIVALS.values():
            a = [dist.sample(random.Random(seed)) for _ in range(5)]
            b = [dist.sample(random.Random(seed)) for _ in range(5)]
            assert a == b

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(SimulationError):
            IA_BURSTY.quantile(1.0)
        with pytest.raises(SimulationError):
            ExponentialInterarrival().quantile(-0.1)

    def test_validation(self):
        with pytest.raises(SimulationError):
            InterarrivalDistribution("x", ((1.0, 0.0),))
        with pytest.raises(SimulationError):
            InterarrivalDistribution("x", ((0.0, 0.0), (1.0, 1.0)))
        with pytest.raises(SimulationError):
            InterarrivalDistribution("x", ((1.0, 0.0), (2.0, 0.9)))
        with pytest.raises(SimulationError):
            InterarrivalDistribution("x", ((2.0, 0.0), (1.0, 1.0)))

    @pytest.mark.statistical
    def test_empirical_mean_tracks_exact_mean(self):
        # mean() integrates the log-linear segments exactly; the sample
        # mean must converge to it.
        for dist in (IA_SMOOTH, IA_BURSTY):
            rng = random.Random(13)
            n = 40_000
            mean = sum(dist.sample(rng) for _ in range(n)) / n
            assert mean == pytest.approx(dist.mean(), rel=0.15)


class TestGoldenQuantiles:
    """Exact inverse-CDF pins for every named distribution.

    Any change to the knot tables or the interpolation scheme moves
    these values; update them only for a deliberate distribution change.
    """

    US = (0.05, 0.25, 0.5, 0.75, 0.95, 0.99)

    GOLDEN = {
        "poisson": (
            0.05129329438755058,
            0.2876820724517809,
            0.6931471805599453,
            1.3862943611198906,
            2.99573227355399,
            4.605170185988091,
        ),
        "smooth": (
            0.5533409598501607,
            0.7863098784635412,
            0.9782670396418924,
            1.168359576953514,
            1.6309506430300087,
            1.8428544871267747,
        ),
        "bursty": (
            0.005230641944047326,
            0.015294489826634606,
            0.06062866266041591,
            0.4954358151163562,
            5.477225575051655,
            24.49489742783178,
        ),
    }

    GOLDEN_MEANS = {
        "poisson": 1.0,
        "smooth": 1.0031480708605809,
        "bursty": 1.1975419887214767,
    }

    def test_quantile_pins(self):
        for name, expected in self.GOLDEN.items():
            dist = INTERARRIVALS[name]
            got = tuple(dist.quantile(u) for u in self.US)
            assert got == expected, name

    def test_mean_pins(self):
        for name, expected in self.GOLDEN_MEANS.items():
            assert INTERARRIVALS[name].mean() == expected, name


class TestPairLocality:
    def test_samples_cover_only_matrix_pairs(self):
        tm = _matrix()
        sampler = PairLocality.from_matrix(tm)
        rng = random.Random(2)
        seen = {sampler.sample(rng) for _ in range(500)}
        assert seen <= set(tm.pairs())

    def test_hot_pair_dominates(self):
        tm = _matrix()
        hot = max(tm.weights, key=tm.weights.get)
        sampler = PairLocality.from_matrix(tm)
        rng = random.Random(3)
        n = 3000
        hits = sum(sampler.sample(rng) == hot for _ in range(n))
        assert hits / n == pytest.approx(tm.weights[hot], abs=0.05)

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_order_preserving_relabel_equivariance(self, seed):
        # Renaming DCs through an order-preserving bijection permutes
        # nothing in the canonical pair ordering, so the draw sequence
        # maps 1:1 through the relabeling.
        tm = _matrix(seed)
        mapping = {dc: dc.replace("DC", "DX") for dc in DCS}
        relabeled = tm.relabel(mapping)
        a = PairLocality.from_matrix(tm)
        b = PairLocality.from_matrix(relabeled)
        draws_a = [a.sample(random.Random(seed * 31 + 1)) for _ in range(50)]
        draws_b = [b.sample(random.Random(seed * 31 + 1)) for _ in range(50)]
        assert [
            (mapping[x], mapping[y]) for x, y in draws_a
        ] == draws_b


class TestDeriveSeed:
    def test_deterministic_and_salt_sensitive(self):
        assert derive_seed(404, 0) == 827878853181572174
        assert derive_seed(404, 0) == derive_seed(404, 0)
        assert derive_seed(404, 0) != derive_seed(404, 1)
        assert derive_seed(404, 0) != derive_seed(405, 0)

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        salt=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=50, deadline=None)
    def test_no_adjacent_correlation(self, seed, salt):
        # Neighbouring seeds must not yield neighbouring substreams.
        assert abs(derive_seed(seed, salt) - derive_seed(seed + 1, salt)) > 1000


class TestFlowGenerator:
    def test_unknown_names_rejected(self):
        with pytest.raises(SimulationError):
            FlowGenerator(sizes="nope", locality=_matrix())
        with pytest.raises(SimulationError):
            FlowGenerator(sizes="web1", gaps="nope", locality=_matrix())

    def test_invalid_run_arguments(self):
        g = FlowGenerator(sizes="web1", locality=_matrix(), seed=1)
        with pytest.raises(SimulationError):
            g.flows(duration_s=0, offered_bps=1e9)
        with pytest.raises(SimulationError):
            g.flows(duration_s=1.0, offered_bps=0)

    def test_flows_sorted_in_window_with_valid_pairs(self):
        tm = _matrix()
        g = FlowGenerator(sizes="web1", gaps="bursty", locality=tm, seed=7)
        flows = g.flows(duration_s=3.0, offered_bps=1e9, t0=10.0)
        assert flows
        times = [t for t, *_ in flows]
        assert times == sorted(times)
        assert all(10.0 <= t < 13.0 for t in times)
        pairs = set(tm.pairs())
        assert all((src, dst) in pairs for _, src, dst, _ in flows)
        assert all(
            isinstance(size, int) and size > 0 for *_, size in flows
        )

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_seeded_determinism(self, seed):
        def stream():
            g = FlowGenerator(
                sizes="web2", gaps="bursty", locality=_matrix(), seed=seed
            )
            return g.flows(duration_s=1.0, offered_bps=1e9)

        assert encode_flow_stream(stream()) == encode_flow_stream(stream())

    def test_different_seeds_differ(self):
        tm = _matrix()

        def digest(seed):
            g = FlowGenerator(sizes="web1", locality=tm, seed=seed)
            return flow_stream_digest(g.flows(duration_s=2.0, offered_bps=1e9))

        assert digest(1) != digest(2)

    @pytest.mark.statistical
    def test_offered_load_is_respected(self):
        # Total bits generated over a long window tracks offered_bps.
        tm = _matrix()
        g = FlowGenerator(sizes="cache", gaps="poisson", locality=tm, seed=3)
        duration, offered = 60.0, 2e9
        flows = g.flows(duration_s=duration, offered_bps=offered)
        total_bits = sum(size for *_, size in flows)
        assert total_bits / duration == pytest.approx(offered, rel=0.15)

    @pytest.mark.statistical
    def test_locality_marginal_matches_matrix(self):
        tm = _matrix()
        g = FlowGenerator(sizes="web2", gaps="smooth", locality=tm, seed=9)
        flows = g.flows(duration_s=30.0, offered_bps=2e9)
        counts: dict = {}
        for _, src, dst, _ in flows:
            counts[(src, dst)] = counts.get((src, dst), 0) + 1
        hot = max(tm.weights, key=tm.weights.get)
        assert counts[hot] / len(flows) == pytest.approx(
            tm.weights[hot], abs=0.06
        )


class TestGoldenFlowStream:
    """The canonical stream for one fixed recipe, pinned by digest."""

    RECIPE_DIGEST = (
        "0afa367bb45a4f035a982488aeed2584f0bdd24076915181e97ec9e24e71d6ea"
    )

    @staticmethod
    def _stream():
        tm = heavy_tailed_matrix(
            [f"DC{i}" for i in range(1, 5)], random.Random(5)
        )
        g = FlowGenerator(sizes="web1", gaps="bursty", locality=tm, seed=404)
        return g.flows(duration_s=5.0, offered_bps=1e9)

    def test_digest_pin(self):
        flows = self._stream()
        assert len(flows) == 663
        assert flow_stream_digest(flows) == self.RECIPE_DIGEST

    def test_two_process_byte_identity(self):
        # The acceptance criterion: same seed, different OS process,
        # identical stream bytes.
        code = (
            "import random\n"
            "from repro.simulation.traffic import heavy_tailed_matrix\n"
            "from repro.simulation.trafficgen import FlowGenerator, "
            "flow_stream_digest\n"
            "tm = heavy_tailed_matrix([f'DC{i}' for i in range(1, 5)], "
            "random.Random(5))\n"
            "g = FlowGenerator(sizes='web1', gaps='bursty', locality=tm, "
            "seed=404)\n"
            "print(flow_stream_digest("
            "g.flows(duration_s=5.0, offered_bps=1e9)))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
        )
        assert out.stdout.strip() == flow_stream_digest(self._stream())
        assert out.stdout.strip() == self.RECIPE_DIGEST


class TestTimelineFlows:
    def test_intervals_are_independent_substreams(self):
        tms = [_matrix(1), _matrix(2), _matrix(3)]
        timeline = [(0.0, tms[0]), (2.0, tms[1]), (4.0, tms[2])]
        loads = [1e9, 1e9, 1e9]
        base = generate_timeline_flows(
            timeline,
            duration_s=6.0,
            offered_bps_per_tm=loads,
            sizes="web1",
            gaps="bursty",
            seed=77,
        )
        # Doubling the middle interval's load leaves the other
        # intervals' flows untouched.
        heavier = generate_timeline_flows(
            timeline,
            duration_s=6.0,
            offered_bps_per_tm=[1e9, 2e9, 1e9],
            sizes="web1",
            gaps="bursty",
            seed=77,
        )
        outside = [f for f in base if not (2.0 <= f[0] < 4.0)]
        outside_heavier = [f for f in heavier if not (2.0 <= f[0] < 4.0)]
        assert outside == outside_heavier

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(SimulationError):
            generate_timeline_flows(
                [(0.0, _matrix())],
                duration_s=1.0,
                offered_bps_per_tm=[1e9, 2e9],
                sizes="web1",
                gaps="poisson",
                seed=1,
            )
