"""reprolint v3 autofixer: fixpoint semantics, edit algebra, CLI contract.

The fixer's guarantees (see ``repro.lint.fix``): conservative — only
edits whose semantics are locally provable; *idempotent* — fixing
already-fixed sources applies nothing and changes nothing; convergent —
fixed sources re-lint clean of every fixable finding; and ``--dry-run``
is byte-preserving on disk while printing the exact diff ``--fix`` would
apply.
"""

from hypothesis import given, settings, strategies as st

from repro.cli import main as cli_main
from repro.lint import (
    TextEdit,
    apply_edits,
    fix_sources,
    get_rule,
    lint_project,
    unified_diff,
)

#: Sources with one known-fixable violation each, plus one clean file.
CORPUS = [
    ("pkg/loops.py", "for x in {3, 1, 2}:\n    use(x)\n"),
    ("pkg/serial.py", "key = canonical_json(set(names))\n"),
    ("pkg/api.py", "def plan_widget(region, prune=True, jobs=1):\n    pass\n"),
    ("pkg/stale.py", "x = 1  # repro: noqa-R001\n"),
    ("pkg/clean.py", "def helper(a, b):\n    return a + b\n"),
]


class TestApplyEdits:
    def test_edits_apply_bottom_up(self):
        out, applied = apply_edits(
            "abcdef", [TextEdit(0, 1, "X"), TextEdit(3, 4, "Y")]
        )
        assert out == "XbcYef"
        assert applied == 2

    def test_pure_insertion(self):
        out, applied = apply_edits("abcdef", [TextEdit(3, 3, "Z")])
        assert out == "abcZdef"
        assert applied == 1

    def test_overlapping_edit_is_skipped_not_rebased(self):
        out, applied = apply_edits(
            "abcdef", [TextEdit(0, 4, "X"), TextEdit(2, 6, "Y")]
        )
        # Bottom-up: (2, 6) lands first; (0, 4) overlaps it and is
        # deferred to the next lint round rather than rebased.
        assert out == "abY"
        assert applied == 1

    def test_duplicate_edits_collapse(self):
        edit = TextEdit(0, 1, "X")
        out, applied = apply_edits("abc", [edit, edit])
        assert out == "Xbc"
        assert applied == 1

    def test_no_edits_is_identity(self):
        assert apply_edits("abc", []) == ("abc", 0)


class TestFixpoint:
    def test_corpus_fixes_apply_and_re_lint_clean(self):
        report = fix_sources(CORPUS, report_unused_noqa=True)
        assert report.total_applied >= 4
        assert report.remaining == []
        fixed = list(report.files.items())
        assert lint_project(fixed, report_unused_noqa=True) == []

    def test_fix_is_idempotent(self):
        once = fix_sources(CORPUS, report_unused_noqa=True)
        twice = fix_sources(
            list(once.files.items()), report_unused_noqa=True
        )
        assert twice.total_applied == 0
        assert twice.files == once.files

    def test_sorted_wrap_fixes(self):
        report = fix_sources(CORPUS)
        assert "for x in sorted({3, 1, 2}):" in report.files["pkg/loops.py"]
        assert (
            "canonical_json(sorted(set(names)))"
            in report.files["pkg/serial.py"]
        )

    def test_keyword_only_migration(self):
        report = fix_sources(CORPUS)
        assert (
            "def plan_widget(region, *, prune=True, jobs=1):"
            in report.files["pkg/api.py"]
        )

    def test_stale_noqa_removal(self):
        report = fix_sources(CORPUS, report_unused_noqa=True)
        assert report.files["pkg/stale.py"] == "x = 1\n"

    def test_clean_file_is_untouched(self):
        report = fix_sources(CORPUS, report_unused_noqa=True)
        assert report.files["pkg/clean.py"] == dict(CORPUS)["pkg/clean.py"]
        assert "pkg/clean.py" not in report.changed_paths()

    def test_unfixable_findings_survive_as_remaining(self):
        sources = [("pkg/mod.py", "import random\nrandom.seed(7)\n")]
        report = fix_sources(sources, rules=[get_rule("R001")])
        assert report.total_applied == 0
        assert [f.rule_id for f in report.remaining] == ["R001"]
        assert report.files["pkg/mod.py"] == sources[0][1]

    def test_unified_diff_covers_only_changed_files(self):
        report = fix_sources(CORPUS, report_unused_noqa=True)
        diff = unified_diff(dict(CORPUS), report)
        assert "a/pkg/loops.py" in diff
        assert "+for x in sorted({3, 1, 2}):" in diff
        assert "pkg/clean.py" not in diff


class TestCliFix:
    def _write_corpus(self, tmp_path):
        target = tmp_path / "loops.py"
        target.write_text("for x in {3, 1, 2}:\n    use(x)\n")
        return target

    def test_dry_run_is_byte_preserving(self, tmp_path, capsys):
        target = self._write_corpus(tmp_path)
        before = target.read_bytes()
        assert cli_main(["lint", str(tmp_path), "--fix", "--dry-run"]) == 0
        assert target.read_bytes() == before
        captured = capsys.readouterr()
        assert "+for x in sorted({3, 1, 2}):" in captured.out
        assert "would apply 1 fix(es) in 1 file(s)" in captured.err

    def test_fix_writes_and_re_lints_clean(self, tmp_path, capsys):
        target = self._write_corpus(tmp_path)
        assert cli_main(["lint", str(tmp_path), "--fix"]) == 0
        assert "sorted({3, 1, 2})" in target.read_text()
        capsys.readouterr()
        assert cli_main(["lint", str(tmp_path)]) == 0

    def test_fix_reports_remaining_findings(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text("import random\nrandom.seed(7)\n")
        assert cli_main(["lint", str(tmp_path), "--fix"]) == 1
        captured = capsys.readouterr()
        assert "R001" in captured.out

    def test_dry_run_without_fix_is_usage_error(self, tmp_path, capsys):
        self._write_corpus(tmp_path)
        assert cli_main(["lint", str(tmp_path), "--dry-run"]) == 2
        assert "--dry-run requires --fix" in capsys.readouterr().err


class TestFixRoundTripProperty:
    @settings(max_examples=30, deadline=None)
    @given(
        values=st.lists(
            st.integers(min_value=0, max_value=99),
            min_size=1,
            max_size=5,
            unique=True,
        )
    )
    def test_fixed_set_iterations_re_lint_clean(self, values):
        literal = "{" + ", ".join(str(v) for v in values) + "}"
        source = f"for x in {literal}:\n    use(x)\n"
        sources = [("pkg/mod.py", source)]
        report = fix_sources(sources, rules=[get_rule("R004")])
        assert report.remaining == []
        fixed = list(report.files.items())
        assert lint_project(fixed, rules=[get_rule("R004")]) == []
        # And the fix itself reached a true fixpoint.
        again = fix_sources(fixed, rules=[get_rule("R004")])
        assert again.total_applied == 0
