"""Demand telemetry and the closed control loop (§5.2)."""

import random

import pytest

from repro.control.controller import IrisController, compute_target
from repro.control.telemetry import DemandEstimator
from repro.core.planner import plan_region
from repro.exceptions import ControlPlaneError
from repro.simulation.flowsim import FluidSimulator


class TestEstimator:
    def test_single_window(self):
        est = DemandEstimator(safety_factor=1.0)
        est.observe_window({("A", "B"): 125e9}, window_s=1.0)  # 1 Tbps
        assert est.demands_gbps()[("A", "B")] == pytest.approx(1000.0)

    def test_ewma_converges(self):
        est = DemandEstimator(alpha=0.5, safety_factor=1.0)
        est.observe_window({("A", "B"): 0.0}, 1.0)
        for _ in range(20):
            est.observe_window({("A", "B"): 125e6}, 1.0)  # 1 Gbps
        assert est.demands_gbps()[("A", "B")] == pytest.approx(1.0, rel=1e-3)

    def test_safety_factor_applied(self):
        est = DemandEstimator(safety_factor=1.5)
        est.observe_window({("A", "B"): 125e6}, 1.0)
        assert est.demands_gbps()[("A", "B")] == pytest.approx(1.5)

    def test_pair_canonicalization(self):
        est = DemandEstimator(safety_factor=1.0)
        est.observe_window({("B", "A"): 125e6}, 1.0)
        assert ("A", "B") in est.demands_gbps()

    def test_observe_flows(self):
        est = DemandEstimator(safety_factor=1.0)
        est.observe_flows(
            [("A", "B", 1e9), ("B", "A", 1e9), ("A", "C", 5e8)], window_s=2.0
        )
        demands = est.demands_gbps()
        assert demands[("A", "B")] == pytest.approx(8.0)
        assert demands[("A", "C")] == pytest.approx(2.0)

    def test_requires_observation(self):
        with pytest.raises(ControlPlaneError):
            DemandEstimator().demands_gbps()

    def test_validation(self):
        with pytest.raises(ControlPlaneError):
            DemandEstimator(alpha=0.0)
        with pytest.raises(ControlPlaneError):
            DemandEstimator(safety_factor=0.5)
        with pytest.raises(ControlPlaneError):
            DemandEstimator().observe_window({}, 0.0)

    def test_reconfiguration_gate(self):
        est = DemandEstimator(safety_factor=1.0)
        est.observe_window({("A", "B"): 125e6}, 1.0)
        applied = est.demands_gbps()
        # No drift: not worthwhile.
        assert not est.reconfiguration_worthwhile(applied)
        # Big shift: worthwhile.
        for _ in range(10):
            est.observe_window({("A", "B"): 500e6}, 1.0)
        assert est.reconfiguration_worthwhile(applied)


class TestClosedLoop:
    def test_simulation_to_circuits(self, toy_region):
        """Flows -> telemetry -> demand matrix -> circuits -> devices."""
        plan = plan_region(toy_region)
        # Offer ~32 Gbps DC1->DC3 and ~16 Gbps DC2->DC4 for one second.
        rng = random.Random(5)
        flows = []
        t = 0.0
        while t < 1.0:
            t += rng.expovariate(2000.0)
            flows.append((t, "DC1", "DC3", 2_000_000 * 8))
        t = 0.0
        while t < 1.0:
            t += rng.expovariate(1000.0)
            flows.append((t, "DC2", "DC4", 2_000_000 * 8))

        sim = FluidSimulator(
            egress_bps={dc: 1e12 for dc in toy_region.dcs}
        )
        records = sim.run(flows)

        est = DemandEstimator(alpha=1.0, safety_factor=1.2)
        est.observe_flows(
            ((r.src, r.dst, r.size_bytes) for r in records), window_s=1.0
        )
        demands = est.demands_gbps()
        assert demands[("DC1", "DC3")] > demands[("DC2", "DC4")] > 0

        controller = IrisController(plan)
        report = controller.apply_demands(demands)
        assert report.verified and report.connects > 0
        target = compute_target(plan, demands)
        assert all(n >= 1 for n in target.fibers.values())
        assert controller.audit() == []
