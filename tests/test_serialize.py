"""JSON round-trips for regions and plan summaries."""

import json

import pytest

from repro.core.planner import plan_region
from repro.exceptions import ReproError
from repro.serialize import (
    fiber_map_from_dict,
    fiber_map_to_dict,
    plan_from_dict,
    plan_from_json,
    plan_to_dict,
    plan_to_json,
    region_from_json,
    region_to_json,
)


class TestFiberMapRoundTrip:
    def test_round_trip(self, toy_map):
        restored = fiber_map_from_dict(fiber_map_to_dict(toy_map))
        assert restored.dcs == toy_map.dcs
        assert restored.huts == toy_map.huts
        assert restored.ducts == toy_map.ducts
        for u, v in toy_map.ducts:
            assert restored.duct_length(u, v) == pytest.approx(
                toy_map.duct_length(u, v)
            )
        for node in toy_map.nodes:
            assert restored.position(node) == toy_map.position(node)

    def test_malformed_rejected(self):
        with pytest.raises(ReproError):
            fiber_map_from_dict({"nodes": [{"name": "A"}], "ducts": []})


class TestRegionRoundTrip:
    def test_round_trip(self, toy_region):
        restored = region_from_json(region_to_json(toy_region))
        assert restored.dc_fibers == dict(toy_region.dc_fibers)
        assert restored.wavelengths_per_fiber == toy_region.wavelengths_per_fiber
        assert restored.constraints == toy_region.constraints
        assert restored.fiber_map.ducts == toy_region.fiber_map.ducts

    def test_invalid_json(self):
        with pytest.raises(ReproError, match="invalid JSON"):
            region_from_json("{nope")

    def test_wrong_version(self, toy_region):
        data = json.loads(region_to_json(toy_region))
        data["format_version"] = 99
        with pytest.raises(ReproError, match="version"):
            region_from_json(json.dumps(data))

    def test_missing_fields(self):
        with pytest.raises(ReproError):
            region_from_json(json.dumps({"format_version": 1}))


class TestPlanSummary:
    def test_plan_summary_contents(self, toy_region):
        plan = plan_region(toy_region)
        data = plan_to_dict(plan)
        assert data["base_capacity"]["H1~H2"] == 20
        assert data["residual"]["H1~H2"] == 4
        assert data["total_fiber_pair_spans"] == 76
        assert data["cut_throughs"] == []
        # Valid JSON end to end.
        assert json.loads(plan_to_json(plan)) == data


class TestPlanSummaryWithAmplifiers:
    def test_amplifier_sites_serialized(self):
        from tests.test_amplifiers import line_region

        region = line_region(55.0, 55.0)
        plan = plan_region(region)
        data = plan_to_dict(plan)
        assert data["amplifier_sites"] == {"M0": 4}
        assert data["scenarios_enumerated"] >= 1
        assert data["scenarios_total"] >= data["scenarios_enumerated"]


class TestInstrumentedPlanSerialization:
    """Plans carry timings and (sometimes) a span trace; the audit JSON
    must stay deterministic by default and expose both only explicitly."""

    def test_default_json_is_deterministic_across_runs(self, toy_region):
        # Second plan hits a warm hose cache and a different-looking trace;
        # neither may leak into the default audit output.
        first = plan_to_json(plan_region(toy_region))
        second = plan_to_json(plan_region(toy_region))
        assert first == second

    def test_default_timings_block_is_environment_invariant(self, toy_region):
        data = plan_to_dict(plan_region(toy_region))
        assert set(data["timings"]) == {"scenarios_evaluated", "hose_lookups"}
        assert data["timings"]["scenarios_evaluated"] == data["scenarios_enumerated"]
        assert "trace" not in data

    def test_runtime_fields_opt_in(self, toy_region):
        plan = plan_region(toy_region)
        data = plan_to_dict(plan, include_runtime=True)
        timings = data["timings"]
        assert timings["backend"] == "serial" and timings["jobs"] == 1
        assert (
            timings["hose_cache_hits"] + timings["hose_cache_misses"]
            == timings["hose_lookups"]
        )
        assert timings["total_s"] >= 0.0

    def test_trace_opt_in_and_round_trips(self, toy_region):
        from repro.obs import record_from_dict, record_to_dict

        plan_region(toy_region)  # warm the hose cache: stable hit counters
        data = plan_to_dict(plan_region(toy_region), include_trace=True)
        assert data["trace"]["name"] == "plan.topology"
        # Without runtime fields the trace is deterministic content...
        again = plan_to_dict(plan_region(toy_region), include_trace=True)
        assert data["trace"] == again["trace"]
        # ...and reconstructs to an equivalent span tree.
        restored = record_from_dict(data["trace"])
        assert record_to_dict(restored, include_durations=False) == data["trace"]

    def test_traced_plan_serializes_cleanly(self, toy_region):
        # A plan produced under global tracing has a much richer trace
        # attached; default serialization must still match the untraced one.
        from repro import obs
        from repro.core.hose import clear_hose_cache

        clear_hose_cache()
        plain = plan_to_json(plan_region(toy_region))
        clear_hose_cache()
        with obs.tracing("audit"):
            traced_plan = plan_region(toy_region)
        assert plan_to_json(traced_plan) == plain


class TestFullPlanRoundTrip:
    """The lossless ``full=True`` encoding and its reconstruction."""

    def test_encode_decode_is_a_fixpoint(self, toy_region):
        plan = plan_region(toy_region)
        encoded = plan_to_dict(plan, full=True)
        restored = plan_from_dict(encoded)
        # Fixpoint: re-encoding the reconstruction changes nothing.
        assert plan_to_dict(restored, full=True) == encoded
        # And so on, indefinitely.
        assert plan_to_dict(plan_from_dict(plan_to_dict(restored, full=True)),
                            full=True) == encoded

    def test_fixpoint_on_failure_tolerant_region(self, small_region_instance):
        plan = plan_region(small_region_instance.spec)
        encoded = plan_to_dict(plan, full=True)
        restored = plan_from_dict(encoded)
        assert plan_to_dict(restored, full=True) == encoded
        assert restored.validate() == []
        assert restored.inventory() == plan.inventory()

    def test_json_form_round_trips(self, toy_region):
        plan = plan_region(toy_region)
        text = plan_to_json(plan, full=True)
        restored = plan_from_json(text)
        assert plan_to_json(restored, full=True) == text
        # The default summary of a loaded plan matches a fresh plan's.
        assert plan_to_json(restored) == plan_to_json(plan)

    def test_full_is_a_superset_of_the_summary(self, toy_region):
        plan = plan_region(toy_region)
        summary = plan_to_dict(plan)
        encoded = plan_to_dict(plan, full=True)
        assert summary == {
            key: value for key, value in encoded.items() if key in summary
        }
        assert {"region", "scenario_paths", "amplifier_assignments",
                "effective_paths"} <= set(encoded)

    def test_summary_dict_rejected(self, toy_region):
        with pytest.raises(ReproError, match="full=True"):
            plan_from_dict(plan_to_dict(plan_region(toy_region)))

    def test_wrong_version_rejected(self, toy_region):
        encoded = plan_to_dict(plan_region(toy_region), full=True)
        encoded["format_version"] = 999
        with pytest.raises(ReproError, match="version"):
            plan_from_dict(encoded)

    def test_malformed_payload_rejected(self, toy_region):
        encoded = plan_to_dict(plan_region(toy_region), full=True)
        encoded["effective_paths"] = [{"bogus": 1}]
        with pytest.raises(ReproError, match="malformed"):
            plan_from_dict(encoded)

    def test_loaded_timings_are_environment_invariant(self, toy_region):
        restored = plan_from_dict(
            plan_to_dict(plan_region(toy_region), full=True)
        )
        timings = restored.topology.timings
        assert timings is not None and timings.backend == "store"
        assert timings.total_s == 0.0


class TestTopologyRoundTrip:
    def test_encode_decode_is_a_fixpoint(self, toy_region):
        from repro.core.topology import plan_topology
        from repro.serialize import topology_from_dict, topology_to_dict

        topology = plan_topology(toy_region)
        encoded = topology_to_dict(topology)
        restored = topology_from_dict(encoded)
        assert topology_to_dict(restored) == encoded
        assert restored.edge_capacity == topology.edge_capacity
        assert restored.scenario_paths == topology.scenario_paths
        assert restored.scenario_count_total == topology.scenario_count_total

    def test_wrong_version_rejected(self, toy_region):
        from repro.core.topology import plan_topology
        from repro.serialize import topology_from_dict, topology_to_dict

        encoded = topology_to_dict(plan_topology(toy_region))
        encoded["format_version"] = 0
        with pytest.raises(ReproError, match="version"):
            topology_from_dict(encoded)
