"""JSON round-trips for regions and plan summaries."""

import json

import pytest

from repro.core.planner import plan_region
from repro.exceptions import ReproError
from repro.serialize import (
    fiber_map_from_dict,
    fiber_map_to_dict,
    plan_to_dict,
    plan_to_json,
    region_from_json,
    region_to_json,
)


class TestFiberMapRoundTrip:
    def test_round_trip(self, toy_map):
        restored = fiber_map_from_dict(fiber_map_to_dict(toy_map))
        assert restored.dcs == toy_map.dcs
        assert restored.huts == toy_map.huts
        assert restored.ducts == toy_map.ducts
        for u, v in toy_map.ducts:
            assert restored.duct_length(u, v) == pytest.approx(
                toy_map.duct_length(u, v)
            )
        for node in toy_map.nodes:
            assert restored.position(node) == toy_map.position(node)

    def test_malformed_rejected(self):
        with pytest.raises(ReproError):
            fiber_map_from_dict({"nodes": [{"name": "A"}], "ducts": []})


class TestRegionRoundTrip:
    def test_round_trip(self, toy_region):
        restored = region_from_json(region_to_json(toy_region))
        assert restored.dc_fibers == dict(toy_region.dc_fibers)
        assert restored.wavelengths_per_fiber == toy_region.wavelengths_per_fiber
        assert restored.constraints == toy_region.constraints
        assert restored.fiber_map.ducts == toy_region.fiber_map.ducts

    def test_invalid_json(self):
        with pytest.raises(ReproError, match="invalid JSON"):
            region_from_json("{nope")

    def test_wrong_version(self, toy_region):
        data = json.loads(region_to_json(toy_region))
        data["format_version"] = 99
        with pytest.raises(ReproError, match="version"):
            region_from_json(json.dumps(data))

    def test_missing_fields(self):
        with pytest.raises(ReproError):
            region_from_json(json.dumps({"format_version": 1}))


class TestPlanSummary:
    def test_plan_summary_contents(self, toy_region):
        plan = plan_region(toy_region)
        data = plan_to_dict(plan)
        assert data["base_capacity"]["H1~H2"] == 20
        assert data["residual"]["H1~H2"] == 4
        assert data["total_fiber_pair_spans"] == 76
        assert data["cut_throughs"] == []
        # Valid JSON end to end.
        assert json.loads(plan_to_json(plan)) == data


class TestPlanSummaryWithAmplifiers:
    def test_amplifier_sites_serialized(self):
        from tests.test_amplifiers import line_region

        region = line_region(55.0, 55.0)
        plan = plan_region(region)
        data = plan_to_dict(plan)
        assert data["amplifier_sites"] == {"M0": 4}
        assert data["scenarios_enumerated"] >= 1
        assert data["scenarios_total"] >= data["scenarios_enumerated"]
