"""reprolint v3: interprocedural parity fixtures and pool-safety rules.

The acceptance bar for the v3 call-graph engine: for each effect rule a
*direct* violation and the same violation buried three calls deep must
both flag, and the transitive finding must quote its origin chain
("via `helper()` at line N → ... → sink at path:line") so the reader
can walk to the root cause without re-running the analysis. The pool
rules (R012-R014) resolve callables submitted to the execution backend
shapes and verify ``@worker_safe`` claims against the effect closure.
"""

import pytest

from repro.lint import (
    EffectOrigin,
    FunctionSummary,
    chain_text,
    get_rule,
    lint_project,
)
from repro.lint.callgraph import function_id
from repro.lint.summaries import propagate_effects, resolve_returns


def only_project(rule_id, sources):
    """Lint ``sources`` as one project with a single rule active."""
    return lint_project(sources, rules=[get_rule(rule_id)])


# --- depth-3 parity fixtures ------------------------------------------------
#
# Each chain follows the same shape: ``entry -> h1 -> h2 -> h3 -> sink``.
# The direct fixture plants the sink at top level; the deep fixture makes
# it reachable only through three calls. Both must flag.

R001_DIRECT = "import random\nrandom.seed(7)\n"
R001_DEEP = """\
import random


def h3():
    random.seed(7)


def h2():
    h3()


def h1():
    h2()


def entry():
    h1()
"""

R002_DIRECT = "import time\nt = time.time()\n"
R002_DEEP = """\
import time


def h3():
    return time.time()


def h2():
    return h3()


def h1():
    return h2()


def entry():
    return h1()
"""

R004_DIRECT = "for x in set(items):\n    use(x)\n"
R004_DEEP = """\
def h3(items):
    for x in set(items):
        use(x)


def h2(items):
    h3(items)


def h1(items):
    h2(items)


def entry(items):
    h1(items)
"""

R005_DIRECT = "x = 0\ndef bump():\n    global x\n    x += 1\n"
R005_DEEP = """\
_count = 0


def h3():
    global _count
    _count += 1


def h2():
    h3()


def h1():
    h2()


def entry():
    h1()
"""

R007_DIRECT = "total = span_km + loss_db\n"
R007_DEEP = """\
def h3():
    return fiber_km


def h2():
    return h3()


def h1():
    return h2()


def entry(duration_s):
    return h1() + duration_s
"""


class TestDepthThreeParity:
    @pytest.mark.parametrize(
        ("rule_id", "direct", "deep"),
        [
            ("R001", R001_DIRECT, R001_DEEP),
            ("R002", R002_DIRECT, R002_DEEP),
            ("R004", R004_DIRECT, R004_DEEP),
            ("R005", R005_DIRECT, R005_DEEP),
            ("R007", R007_DIRECT, R007_DEEP),
        ],
    )
    def test_direct_and_deep_both_flag(self, rule_id, direct, deep):
        assert only_project(rule_id, [("pkg/direct.py", direct)]) != []
        deep_findings = only_project(rule_id, [("pkg/deep.py", deep)])
        assert deep_findings != []
        # The entry-point call site inherits the violation...
        entry = [f for f in deep_findings if "`h1()`" in f.message]
        assert entry, [f.message for f in deep_findings]

    @pytest.mark.parametrize(
        ("rule_id", "deep", "sink"),
        [
            ("R001", R001_DEEP, "random.seed"),
            ("R002", R002_DEEP, "time.time"),
            ("R004", R004_DEEP, "set"),
            ("R005", R005_DEEP, "_count"),
        ],
    )
    def test_deep_finding_quotes_the_origin_chain(self, rule_id, deep, sink):
        findings = only_project(rule_id, [("pkg/deep.py", deep)])
        entry = [f for f in findings if "`h1()`" in f.message]
        assert entry
        message = entry[0].message
        # ... and the chain walks hop by hop back to the sink.
        assert "via `h2()` at line" in message
        assert "via `h3()` at line" in message
        assert sink in message
        assert "pkg/deep.py:" in message

    def test_chain_hops_carry_real_line_numbers(self):
        findings = only_project("R001", [("pkg/deep.py", R001_DEEP)])
        entry = [f for f in findings if "`h1()`" in f.message]
        assert "via `h2()` at line 13" in entry[0].message
        assert "via `h3()` at line 9" in entry[0].message
        assert "pkg/deep.py:5" in entry[0].message


class TestCrossModulePropagation:
    HELPER = """\
import random


def scramble(items):
    random.shuffle(items)
    return items
"""
    CALLER = """\
from pkg.util import scramble


def plan(items):
    return scramble(items)
"""

    def test_effect_crosses_module_boundary(self):
        findings = only_project(
            "R001",
            [("pkg/util.py", self.HELPER), ("pkg/app.py", self.CALLER)],
        )
        caller_side = [f for f in findings if f.path == "pkg/app.py"]
        assert len(caller_side) == 1
        assert "`scramble()`" in caller_side[0].message
        assert "pkg/util.py:5" in caller_side[0].message

    def test_blessed_origin_does_not_propagate(self):
        blessed = self.HELPER.replace(
            "random.shuffle(items)",
            "random.shuffle(items)  # repro: noqa-R001",
        )
        findings = only_project(
            "R001",
            [("pkg/util.py", blessed), ("pkg/app.py", self.CALLER)],
        )
        assert findings == []


class TestR004ArgumentFlow:
    def test_unordered_value_passed_to_order_sensitive_callee(self):
        source = """\
def first(seq):
    for item in seq:
        return item


def pick():
    return first(set(names))
"""
        findings = only_project("R004", [("pkg/mod.py", source)])
        arg_side = [f for f in findings if "'seq'" in f.message]
        assert arg_side
        assert "`first()`" in arg_side[0].message

    def test_derived_unordered_return_is_tracked(self):
        source = """\
def make_ids():
    return set(raw_ids)


def run():
    for item in make_ids():
        handle(item)
"""
        findings = only_project("R004", [("pkg/mod.py", source)])
        assert any("make_ids" in f.message for f in findings)

    def test_sorted_wrap_stays_clean(self):
        source = """\
def make_ids():
    return set(raw_ids)


def run():
    for item in sorted(make_ids()):
        handle(item)
"""
        assert only_project("R004", [("pkg/mod.py", source)]) == []


POOL_PREFIX = "from repro.core.engine import get_backend\n"


class TestPoolSafetyRules:
    def test_r012_rejects_lambda_submission(self):
        source = POOL_PREFIX + (
            "def run(chunks):\n"
            "    backend = get_backend()\n"
            "    return backend.run_chunks(lambda c: c, chunks)\n"
        )
        findings = only_project("R012", [("pkg/mod.py", source)])
        assert [f.rule_id for f in findings] == ["R012"]
        assert "cannot be pickled" in findings[0].message

    def test_r012_rejects_nested_function_submission(self):
        source = POOL_PREFIX + (
            "def run(chunks):\n"
            "    def work(c):\n"
            "        return c\n"
            "    backend = get_backend()\n"
            "    return backend.run_chunks(work, chunks)\n"
        )
        findings = only_project("R012", [("pkg/mod.py", source)])
        assert [f.rule_id for f in findings] == ["R012"]
        assert "`work()`" in findings[0].message

    def test_r012_allows_module_level_submission(self):
        source = POOL_PREFIX + (
            "def work(c):\n"
            "    return c\n"
            "def run(chunks):\n"
            "    backend = get_backend()\n"
            "    return backend.run_chunks(work, chunks)\n"
        )
        assert only_project("R012", [("pkg/mod.py", source)]) == []

    def test_r013_flags_nondeterministic_chunk_fn(self):
        source = (
            "import random\n"
            "def work(c):\n"
            "    random.shuffle(c)\n"
            "    return c\n"
            "def run(backend, chunks):\n"
            "    return backend.run_chunks(work, chunks)\n"
        )
        findings = only_project("R013", [("pkg/mod.py", source)])
        assert [f.rule_id for f in findings] == ["R013"]
        assert "deterministic per chunk" in findings[0].message
        assert "random.shuffle" in findings[0].message

    def test_r013_sees_through_partial_and_free_function(self):
        source = (
            "import random\n"
            "from functools import partial\n"
            "def work(scale, c):\n"
            "    return random.random() * scale\n"
            "def run(backend, chunks):\n"
            "    return map_in_chunks(backend, partial(work, 2.0), chunks)\n"
        )
        findings = only_project("R013", [("pkg/mod.py", source)])
        assert [f.rule_id for f in findings] == ["R013"]
        assert "map_in_chunks()" in findings[0].message

    def test_r014_flags_io_in_chunk_fn(self):
        source = (
            "def work(c):\n"
            "    with open('log.txt', 'w') as fh:\n"
            "        fh.write(str(c))\n"
            "    return c\n"
            "def run(backend, chunks):\n"
            "    return backend.iter_chunks(work, chunks)\n"
        )
        findings = only_project("R014", [("pkg/mod.py", source)])
        assert [f.rule_id for f in findings] == ["R014"]
        assert "filesystem" in findings[0].message

    def test_worker_safe_claim_is_verified_not_trusted(self):
        source = (
            "import random\n"
            "from repro.core.engine import worker_safe\n"
            "@worker_safe\n"
            "def work(c):\n"
            "    random.shuffle(c)\n"
            "    return c\n"
        )
        findings = only_project("R013", [("pkg/mod.py", source)])
        assert [f.rule_id for f in findings] == ["R013"]
        assert "declared @worker_safe" in findings[0].message

    def test_worker_safe_clean_function_passes(self):
        source = (
            "from repro.core.engine import worker_safe\n"
            "@worker_safe\n"
            "def work(c):\n"
            "    return sorted(c)\n"
        )
        assert only_project("R013", [("pkg/mod.py", source)]) == []
        assert only_project("R014", [("pkg/mod.py", source)]) == []


def _summary(qualname, **kwargs):
    return FunctionSummary(
        qualname=qualname,
        name=qualname.rsplit(".", 1)[-1],
        lineno=kwargs.pop("lineno", 1),
        is_nested=kwargs.pop("is_nested", False),
        worker_safe=kwargs.pop("worker_safe", False),
        **kwargs,
    )


class TestSummaryRegression:
    def test_resolve_returns_keeps_iterated_calls(self):
        # A function that both forwards another call's return value and
        # iterates a third call's result must keep the iteration fact
        # when its return is symbolically resolved.
        inner = function_id("pkg/mod.py", "inner")
        outer = function_id("pkg/mod.py", "outer")
        summaries = {
            inner: _summary(
                "inner", return_ordered="unordered", return_origin="set(...)"
            ),
            outer: _summary(
                "outer",
                lineno=3,
                return_call="local:inner",
                iterated_calls=(("local:feeder", "feeder()", 4),),
            ),
        }
        resolved = resolve_returns(
            summaries,
            lambda fid, target: inner if target == "local:inner" else None,
        )
        assert resolved[outer].return_ordered == "unordered"
        assert resolved[outer].iterated_calls == (
            ("local:feeder", "feeder()", 4),
        )

    def test_chain_text_renders_every_hop(self):
        h1 = function_id("pkg/deep.py", "h1")
        h2 = function_id("pkg/deep.py", "h2")
        h3 = function_id("pkg/deep.py", "h3")
        summaries = {
            h1: _summary("h1", lineno=12),
            h2: _summary("h2", lineno=8),
            h3: _summary(
                "h3",
                lineno=4,
                effects={
                    "global_rng": EffectOrigin(
                        "global_rng", "random.seed at pkg/deep.py:5"
                    )
                },
            ),
        }
        edges = {h1: [(h2, "h2", 13)], h2: [(h3, "h3", 9)], h3: []}
        effects = propagate_effects(summaries, edges)
        text = chain_text(effects[h1]["global_rng"])
        assert "via `h2()` at line 13" in text
        assert "via `h3()` at line 9" in text
        assert "random.seed at pkg/deep.py:5" in text
