"""Price book and cost estimator (§3.3)."""

import pytest

from repro.cost.estimator import Inventory, estimate_cost
from repro.cost.pricebook import PriceBook
from repro.exceptions import ReproError


class TestPriceBook:
    def test_paper_relativities(self):
        pb = PriceBook.default()
        # A transceiver costs roughly 10x an electrical port.
        assert pb.transceiver_dci / pb.electrical_port == pytest.approx(10.0)
        # A fiber-pair span lease is ~3x a transceiver.
        assert pb.fiber_pair_span / pb.transceiver_dci == pytest.approx(
            2.77, abs=0.3
        )
        # An OSS port is an order of magnitude below a transceiver.
        assert pb.transceiver_dci / pb.oss_port > 5
        # OXC ports are slightly above OSS ports.
        assert pb.oxc_port > pb.oss_port

    def test_sr_variant(self):
        pb = PriceBook.default().with_sr_priced_dci()
        assert pb.transceiver_dci == pb.transceiver_sr

    def test_scaled_preserves_ratios(self):
        pb = PriceBook.default()
        scaled = pb.scaled(3.0)
        assert scaled.transceiver_dci == pytest.approx(3 * pb.transceiver_dci)
        assert (
            scaled.transceiver_dci / scaled.oss_port
            == pytest.approx(pb.transceiver_dci / pb.oss_port)
        )

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ReproError):
            PriceBook.default().scaled(0)

    def test_negative_price_rejected(self):
        with pytest.raises(ReproError):
            PriceBook(transceiver_dci=-1)


class TestInventory:
    def test_negative_count_rejected(self):
        with pytest.raises(ReproError):
            Inventory(oss_ports=-1)

    def test_port_accounting(self):
        inv = Inventory(
            dc_transceivers=100,
            dc_electrical_ports=100,
            innetwork_transceivers=300,
            innetwork_electrical_ports=300,
            oss_ports=40,
        )
        assert inv.dc_ports == 100
        assert inv.in_network_ports == 640
        assert inv.total_ports == 840

    def test_combined(self):
        a = Inventory(oss_ports=10, amplifiers=2)
        b = Inventory(oss_ports=5, fiber_pair_spans=7)
        c = a.combined(b)
        assert c.oss_ports == 15
        assert c.amplifiers == 2
        assert c.fiber_pair_spans == 7


class TestEstimate:
    def test_toy_eps_arithmetic(self):
        # §3.4: T_E = 4800 transceivers, F_E = 60 fiber-pairs.
        inv = Inventory(
            dc_transceivers=1600,
            dc_electrical_ports=1600,
            innetwork_transceivers=3200,
            innetwork_electrical_ports=3200,
            fiber_pair_spans=60,
        )
        cost = estimate_cost(inv)
        assert cost.transceivers == pytest.approx(4800 * 1300)
        assert cost.fiber == pytest.approx(60 * 3600)

    def test_paper_simplified_ratio(self):
        # §3.4 footnote: (1300 T_E + 3600 F_E) / (1300 T_O + 3600 F_O) = 2.73.
        te, fe, to, fo = 4800, 60, 1600, 78
        ratio = (1300 * te + 3600 * fe) / (1300 * to + 3600 * fo)
        assert ratio == pytest.approx(2.73, abs=0.01)

    def test_sr_for_innetwork(self):
        inv = Inventory(innetwork_transceivers=100)
        normal = estimate_cost(inv)
        sr = estimate_cost(inv, sr_for_innetwork=True)
        ratio = PriceBook.default().transceiver_dci / PriceBook.default().transceiver_sr
        assert sr.transceivers == pytest.approx(normal.transceivers / ratio)

    def test_in_network_total_excludes_dc_cost(self):
        inv = Inventory(
            dc_transceivers=10,
            dc_electrical_ports=10,
            oss_ports=100,
        )
        cost = estimate_cost(inv)
        pb = PriceBook.default()
        assert cost.in_network_total == pytest.approx(100 * pb.oss_port)
        assert cost.dc_cost == pytest.approx(
            10 * pb.transceiver_dci + 10 * pb.electrical_port
        )

    def test_dc_oss_excluded_from_headline(self):
        inv = Inventory(dc_oss_ports=50)
        cost = estimate_cost(inv)
        assert cost.total == 0.0
        assert cost.total_with_dc_oss == pytest.approx(50 * 150)
