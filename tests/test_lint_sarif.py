"""SARIF 2.1.0 output: structure, schema validation, and the CLI path."""

import json
import subprocess
import sys

import pytest

from repro.lint import Finding, all_rules, to_sarif

jsonschema = pytest.importorskip("jsonschema")


#: A faithful subset of the official OASIS SARIF 2.1.0 schema covering
#: everything reprolint emits: the required log shape, run/tool/driver
#: with rule descriptors, and results with physical locations. Field
#: names, required sets, and enums mirror sarif-schema-2.1.0.json; the
#: full schema only adds optional objects reprolint never produces.
SARIF_21_SUBSET_SCHEMA = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "$schema": {"type": "string", "format": "uri"},
        "version": {"enum": ["2.1.0"]},
        "runs": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["tool"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "version": {"type": "string"},
                                    "informationUri": {
                                        "type": "string",
                                        "format": "uri",
                                    },
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string"},
                                                "name": {"type": "string"},
                                                "shortDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                },
                                                "fullDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                },
                                                "defaultConfiguration": {
                                                    "type": "object",
                                                    "properties": {
                                                        "level": {
                                                            "enum": [
                                                                "none",
                                                                "note",
                                                                "warning",
                                                                "error",
                                                            ]
                                                        }
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "columnKind": {
                        "enum": ["utf16CodeUnits", "unicodeCodePoints"]
                    },
                    "originalUriBaseIds": {"type": "object"},
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "ruleIndex": {
                                    "type": "integer",
                                    "minimum": -1,
                                },
                                "level": {
                                    "enum": [
                                        "none",
                                        "note",
                                        "warning",
                                        "error",
                                    ]
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                    "properties": {
                                        "text": {"type": "string"}
                                    },
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "properties": {
                                                            "uri": {
                                                                "type": "string"
                                                            },
                                                            "uriBaseId": {
                                                                "type": "string"
                                                            },
                                                        },
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                            "startColumn": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                        },
                                                    },
                                                },
                                            }
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


def _findings():
    return [
        Finding("src/repro/x.py", 10, 5, "R016", "blocking under lock"),
        Finding("src/repro/y.py", 1, 1, "R000", "syntax error: bad"),
        Finding("src\\win\\z.py", 3, 2, "R015", "unguarded access"),
    ]


def test_sarif_validates_against_schema():
    log = to_sarif(_findings(), all_rules(), version="1.2.3")
    jsonschema.validate(log, SARIF_21_SUBSET_SCHEMA)


def test_sarif_empty_run_validates_too():
    jsonschema.validate(to_sarif([], all_rules()), SARIF_21_SUBSET_SCHEMA)


def test_sarif_declares_version_and_schema_uri():
    log = to_sarif([], all_rules())
    assert log["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in log["$schema"]


def test_sarif_every_result_rule_has_a_descriptor():
    log = to_sarif(_findings(), all_rules())
    run = log["runs"][0]
    ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
    assert ids == sorted(ids)
    for result in run["results"]:
        assert result["ruleId"] in ids
        # ruleIndex points at the matching descriptor.
        assert ids[result["ruleIndex"]] == result["ruleId"]


def test_sarif_r015_r019_descriptors_present():
    log = to_sarif([], all_rules())
    ids = {r["id"] for r in log["runs"][0]["tool"]["driver"]["rules"]}
    assert {"R015", "R016", "R017", "R018", "R019"} <= ids


def test_sarif_windows_paths_normalized_to_uri():
    log = to_sarif(_findings(), all_rules())
    uris = [
        result["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
        for result in log["runs"][0]["results"]
    ]
    assert all("\\" not in uri for uri in uris)


def test_sarif_results_are_sorted_and_carry_messages():
    log = to_sarif(_findings(), all_rules(), version="9.9.9")
    run = log["runs"][0]
    assert run["tool"]["driver"]["version"] == "9.9.9"
    texts = [r["message"]["text"] for r in run["results"]]
    assert all(texts)
    assert len(run["results"]) == 3


def test_cli_format_sarif_round_trips(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\nrandom.seed(1)\n")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "lint", str(bad), "--format", "sarif"],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 1  # findings present
    log = json.loads(proc.stdout)
    jsonschema.validate(log, SARIF_21_SUBSET_SCHEMA)
    results = log["runs"][0]["results"]
    assert any(r["ruleId"] == "R001" for r in results)


def test_cli_format_sarif_clean_tree_exits_zero(tmp_path):
    clean = tmp_path / "ok.py"
    clean.write_text("x = 1\n")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "lint", str(clean), "--format", "sarif"],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0
    log = json.loads(proc.stdout)
    assert log["runs"][0]["results"] == []
