"""Daemon shutdown edge cases and the v1.10 lifecycle regressions.

Three shutdown paths that used to be easy to get wrong: ``close()``
called twice (or from two threads at once), a drain racing an in-flight
``_serve_connection``, and workers exiting while the queue still holds
admitted jobs. Plus regressions for the three concurrency findings the
v4 linter surfaced in this tree: the half-open ``ServiceClient``
constructor, the listener leak on a failed ``start()``, and the
``draining`` flag read outside the service lock.
"""

from __future__ import annotations

import socket as socket_mod
import threading

import pytest

from repro.exceptions import ServiceError
from repro.serialize import region_to_dict
from repro.service import PlannerService, ServiceClient, ServiceConfig


def _submit_request(region):
    return {"op": "submit", "region": region_to_dict(region)}


class TestCloseReentrancy:
    def test_close_twice_sequentially(self, toy_region):
        service = PlannerService(ServiceConfig(workers=1)).start()
        with ServiceClient(service.address) as client:
            job = client.submit(toy_region)
            assert client.result(job["job_id"], timeout_s=120)["ok"]
        service.close()
        service.close()  # second close finds nothing left to do
        assert service.wait_closed(timeout=1)
        assert service._worker_threads == []

    def test_close_from_concurrent_threads(self, toy_region):
        service = PlannerService(ServiceConfig(workers=2)).start()
        service.handle(_submit_request(toy_region))
        barrier = threading.Barrier(4)
        errors = []

        def closer():
            barrier.wait()
            try:
                service.close()
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(exc)

        threads = [threading.Thread(target=closer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert errors == []
        assert service.wait_closed(timeout=1)

    def test_close_unstarted_service_is_safe(self):
        service = PlannerService(ServiceConfig())
        service.close()
        assert service.wait_closed(timeout=1)


class TestDrainDuringInflightConnection:
    def test_sigterm_drain_races_serve_connection(self, toy_region):
        """The ``iris serve`` SIGTERM handler calls ``drain()`` while
        connection threads are mid-request. The in-flight result request
        must be answered before the daemon dies — the connection is not
        torn down under the client."""
        service = PlannerService(ServiceConfig(workers=1)).start()
        try:
            with ServiceClient(service.address) as client:
                job = client.submit(toy_region)
                outcome = {}

                def inflight_result():
                    # Runs on the same connection the daemon is serving
                    # when the drain lands.
                    outcome["result"] = client.result(
                        job["job_id"], timeout_s=120
                    )

                waiter = threading.Thread(target=inflight_result)
                waiter.start()
                clean = service.drain(timeout_s=60.0)
                waiter.join(timeout=60)
                assert not waiter.is_alive()
                assert clean
                assert outcome["result"]["ok"]
                assert outcome["result"]["outcome"] == "cold"
        finally:
            service.close()
        assert service.wait_closed(timeout=5)
        # Post-drain the daemon admits nothing.
        rejected = service.handle(_submit_request(toy_region))
        assert not rejected["ok"]

    def test_submissions_rejected_after_close(self, toy_region):
        service = PlannerService(ServiceConfig()).start()
        service.close()
        assert service.wait_closed(timeout=5)
        rejected = service.handle(_submit_request(toy_region))
        assert not rejected["ok"] and rejected.get("rejected")


class TestWorkerExitWithQueuedJobs:
    def test_close_with_nonempty_queue_drains_admitted_jobs(self, toy_region):
        """Workers must not strand admitted jobs: the shutdown sentinel
        is queued *behind* them, so everything admitted before close()
        still reaches a terminal state."""
        service = PlannerService(ServiceConfig(workers=1))
        # No workers yet: submissions pile up in the queue.
        responses = [service.handle(_submit_request(toy_region))]
        assert responses[0]["ok"]
        with service._lock:
            queued = [j for j in service._jobs.values() if j.state == "queued"]
        assert queued
        service._start_workers()
        service.close()
        assert service._worker_threads == []
        with service._lock:
            jobs = list(service._jobs.values())
        assert jobs
        for job in jobs:
            assert job.done.wait(timeout=30), job.summary()
            assert job.state in ("done", "failed")

    def test_worker_threads_exit_on_sentinel_with_empty_queue(self):
        service = PlannerService(ServiceConfig(workers=2))
        service._start_workers()
        workers = list(service._worker_threads)
        assert len(workers) == 2
        service.close()
        for worker in workers:
            assert not worker.is_alive()


class TestClientLifecycleRegressions:
    """The half-open-constructor and idempotent-close fixes."""

    def test_close_is_idempotent(self, toy_region):
        with PlannerService(ServiceConfig()).start() as service:
            client = ServiceClient(service.address)
            assert client.ping()["ok"]
            client.close()
            client.close()
            client.__exit__(None, None, None)  # context-exit after close

    def test_request_after_close_raises_cleanly(self, toy_region):
        with PlannerService(ServiceConfig()).start() as service:
            client = ServiceClient(service.address)
            client.close()
            with pytest.raises(ServiceError, match="client is closed"):
                client.ping()

    def test_half_open_constructor_closes_socket(self, monkeypatch):
        """TCP connect succeeds, ``makefile`` fails: the constructor must
        close the connected socket instead of leaking it (the instance is
        never handed to the caller, so nobody else can)."""
        opened = []
        real_create = socket_mod.create_connection

        class _BrokenStream(Exception):
            pass

        def tracking_create(address, timeout=None):
            sock = real_create(address, timeout=timeout)
            opened.append(sock)
            monkeypatch.setattr(
                type(sock),
                "makefile",
                lambda self, *a, **k: (_ for _ in ()).throw(OSError("nope")),
                raising=True,
            )
            return sock

        with PlannerService(ServiceConfig()).start() as service:
            monkeypatch.setattr(
                "repro.service.client.socket.create_connection",
                tracking_create,
            )
            with pytest.raises(OSError):
                ServiceClient(service.address)
        assert len(opened) == 1
        assert opened[0].fileno() == -1  # closed, not leaked


class TestStartBindFailureRegression:
    def test_failed_bind_does_not_leak_listener(self, toy_region):
        blocker = socket_mod.socket(socket_mod.AF_INET, socket_mod.SOCK_STREAM)
        try:
            blocker.bind(("127.0.0.1", 0))
            blocker.listen(1)
            port = blocker.getsockname()[1]
            service = PlannerService(ServiceConfig(port=port))
            with pytest.raises(OSError):
                service.start()
            # The half-configured listener was closed and disowned: the
            # service is startable again, not wedged in "already started".
            assert service._listener is None
            service.config = ServiceConfig(port=0)
            started = service.start()
            try:
                assert started.address[1] != 0
                assert started.handle(_submit_request(toy_region))["ok"]
            finally:
                service.close()
        finally:
            blocker.close()


class TestStatsUnderLockRegression:
    def test_stats_draining_consistent_under_concurrent_mutation(self):
        """``stats`` snapshots counters, queue depth, and the draining
        flag under one lock acquisition — concurrent drains and counter
        bumps never produce a torn read (the pre-fix code read
        ``self._draining`` after releasing the lock)."""
        service = PlannerService(ServiceConfig())
        stop = threading.Event()
        errors = []

        def hammer():
            while not stop.is_set():
                service._incr("cold")

        def flip_drain():
            while not stop.is_set():
                with service._lock:
                    service._draining = not service._draining

        threads = [threading.Thread(target=hammer) for _ in range(2)]
        threads.append(threading.Thread(target=flip_drain))
        for t in threads:
            t.start()
        try:
            for _ in range(200):
                response = service.handle({"op": "stats"})
                if not (
                    response["ok"]
                    and isinstance(response["draining"], bool)
                    and response["counters"]["cold"] >= 0
                ):  # pragma: no cover - the regression
                    errors.append(response)
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=10)
        assert errors == []

    def test_stats_reports_draining_after_drain(self, toy_region):
        service = PlannerService(ServiceConfig(workers=1))
        with service._lock:
            service._draining = True
        response = service.handle({"op": "stats"})
        assert response["ok"] and response["draining"] is True
        rejected = service.handle(_submit_request(toy_region))
        assert not rejected["ok"] and rejected.get("rejected")
