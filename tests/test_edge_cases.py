"""Edge cases across modules that the mainline tests don't reach."""

import pytest

from repro.exceptions import (
    ConstraintViolation,
    ControlPlaneError,
    InfeasibleRegionError,
    ReproError,
)


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        import repro.exceptions as exc

        for name in (
            "RegionError",
            "InfeasibleRegionError",
            "PlanningError",
            "ConstraintViolation",
            "DeviceError",
            "ControlPlaneError",
            "SimulationError",
        ):
            assert issubclass(getattr(exc, name), ReproError)

    def test_infeasible_carries_context(self):
        e = InfeasibleRegionError("nope", scenario={("A", "B")}, pair=("X", "Y"))
        assert e.scenario == {("A", "B")}
        assert e.pair == ("X", "Y")

    def test_constraint_violation_carries_path(self):
        e = ConstraintViolation("bad", constraint="TC1", path="p")
        assert e.constraint == "TC1"
        assert e.path == "p"


class TestBudgetCloses:
    def test_closes_reflects_thresholds(self):
        from repro.optics.budget import path_budget
        from repro.optics.components import Transceiver

        good = path_budget([30.0, 30.0])
        assert good.closes(Transceiver())
        # A receiver demanding absurd OSNR refuses the same link.
        fussy = Transceiver(rx_osnr_threshold_db=60.0)
        assert not good.closes(fussy)


class TestChooseHubs:
    def test_no_pair_in_band_raises(self, toy_map):
        from repro.exceptions import RegionError
        from repro.region.placement import choose_hubs

        with pytest.raises(RegionError, match="separation"):
            choose_hubs(toy_map, separation_km=(100.0, 200.0))

    def test_band_validation(self, toy_map):
        from repro.exceptions import RegionError
        from repro.region.placement import choose_hubs

        with pytest.raises(RegionError):
            choose_hubs(toy_map, separation_km=(5.0, 1.0))

    def test_picks_central_pair(self, toy_map):
        from repro.region.placement import choose_hubs

        hubs = choose_hubs(toy_map, separation_km=(10.0, 30.0))
        assert set(hubs) == {"H1", "H2"}


class TestEmptyPacking:
    def test_no_demands_is_empty_assignment(self):
        from repro.control.wavelengths import pack_transceivers

        a = pack_transceivers({}, {}, 40, 400)
        assert a.slots == {}
        assert a.transceivers_toward("anything") == []


class TestWavelengthsForDefault:
    def test_without_wavelength_info_assumes_full_fibers(self):
        from repro.control.controller import CircuitTarget

        target = CircuitTarget(fibers={("A", "B"): 2})
        assert target.wavelengths_for(("A", "B"), 40) == 80
        assert target.wavelengths_for(("A", "C"), 40) == 0

    def test_with_wavelength_info_caps_at_fibers(self):
        from repro.control.controller import CircuitTarget

        target = CircuitTarget(
            fibers={("A", "B"): 1}, wavelengths={("A", "B"): 99}
        )
        assert target.wavelengths_for(("A", "B"), 40) == 40


class TestFaultInjectorValidation:
    def test_rate_bounds(self):
        from repro.control.devices import FaultInjector
        from repro.exceptions import DeviceError

        with pytest.raises(DeviceError):
            FaultInjector(failure_rate=1.0)
        with pytest.raises(DeviceError):
            FaultInjector(failure_rate=-0.1)

    def test_deterministic_given_seed(self):
        from repro.control.devices import FaultInjector

        a = FaultInjector(failure_rate=0.5, seed=3)
        b = FaultInjector(failure_rate=0.5, seed=3)
        assert [a.should_fail() for _ in range(20)] == [
            b.should_fail() for _ in range(20)
        ]


class TestRegionSpecIterators:
    def test_iter_pairs_matches_dc_pairs(self, toy_region):
        assert list(toy_region.iter_pairs()) == toy_region.fiber_map.dc_pairs()


class TestPortModelValidation:
    def test_rejects_nonpositive(self):
        from repro.designs.portmodel import PortModel
        from repro.exceptions import ReproError

        with pytest.raises(ReproError):
            PortModel(n_dcs=0)
        with pytest.raises(ReproError):
            PortModel(n_dcs=4, ports_per_dc=0)

    def test_valid_groups_divide_evenly(self):
        from repro.designs.portmodel import PortModel

        assert PortModel(n_dcs=12).valid_groups() == [1, 2, 3, 4, 6, 12]
