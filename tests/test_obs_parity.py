"""Worker-count parity and no-op identity for the instrumented planner.

Two invariants the observability layer must uphold:

1. **Parity** — metrics that count *work done* (scenarios walked, hose
   lookups performed, the distribution of max-flow values) are properties
   of the planning problem, not of how chunks were sharded across workers,
   so jobs=1 and jobs=2 must merge to identical totals. The hit/miss
   *split* is intentionally excluded: each worker process warms its own
   hose cache, so more workers means more cold misses (hits + misses is
   still invariant).
2. **No-op identity** — with tracing disabled (the default), the planner
   must produce bit-identical plans to a traced run; instrumentation may
   observe, never perturb.
"""

from __future__ import annotations

import pytest

from repro import obs, plan_region
from repro.core.hose import clear_hose_cache
from repro.region.catalog import make_region
from repro.serialize import plan_to_json


@pytest.fixture(scope="module")
def parity_region():
    return make_region(map_index=0, n_dcs=5, dc_fibers=8).spec


def _traced_plan(region, jobs: int):
    clear_hose_cache()
    with obs.tracing("parity") as tracer:
        plan = plan_region(region, jobs=jobs)
    return plan, tracer.record()


class TestJobsParity:
    @pytest.fixture(scope="class")
    def traces(self, parity_region):
        plan1, rec1 = _traced_plan(parity_region, jobs=1)
        plan2, rec2 = _traced_plan(parity_region, jobs=2)
        return plan1, rec1, plan2, rec2

    def test_plans_bit_identical_across_backends(self, traces):
        plan1, _, plan2, _ = traces
        assert plan_to_json(plan1) == plan_to_json(plan2)

    def test_scenario_totals_merge_equal(self, traces):
        _, rec1, _, rec2 = traces
        assert rec1.total("paths.scenarios") == rec2.total("paths.scenarios")
        assert rec1.total("scenarios.evaluated") == rec2.total("scenarios.evaluated")

    def test_hose_lookup_totals_merge_equal(self, traces):
        _, rec1, _, rec2 = traces
        assert rec1.total("hose.lookups") == rec2.total("hose.lookups") > 0
        # hits + misses == lookups on both sides even though the split
        # differs (per-process cache warmth).
        for rec in (rec1, rec2):
            assert (
                rec.total("hose.cache_hit") + rec.total("hose.cache_miss")
                == rec.total("hose.lookups")
            )

    def test_flow_value_distribution_merge_equal(self, traces):
        _, rec1, _, rec2 = traces
        dist1 = rec1.counter_totals("hose.flow.")
        dist2 = rec2.counter_totals("hose.flow.")
        assert dist1 == dist2 and dist1

    def test_timings_view_agrees_across_backends(self, traces):
        plan1, _, plan2, _ = traces
        t1, t2 = plan1.topology.timings, plan2.topology.timings
        assert t1.scenarios_evaluated == t2.scenarios_evaluated
        assert (
            t1.hose_cache_hits + t1.hose_cache_misses
            == t2.hose_cache_hits + t2.hose_cache_misses
        )
        assert (t1.backend, t1.jobs) == ("serial", 1)
        assert (t2.backend, t2.jobs) == ("steal", 2)

    def test_worker_shards_present_in_pool_trace(self, traces):
        _, rec1, _, rec2 = traces
        chunks2 = [r for r in rec2.walk() if r.name.startswith("engine.chunk:")]
        assert chunks2, "jobs=2 trace should contain per-chunk worker shards"
        # Chunk shards partition the scenario work.
        assert sum(r.counters.get("chunk.items", 0) for r in chunks2) > 0
        chunks1 = [r for r in rec1.walk() if r.name.startswith("engine.chunk:")]
        assert sum(
            r.counters.get("chunk.items", 0) for r in chunks1
        ) == sum(r.counters.get("chunk.items", 0) for r in chunks2)


class TestNoOpIdentity:
    def test_untraced_plan_bit_identical_to_traced(self, parity_region):
        clear_hose_cache()
        untraced = plan_region(parity_region)
        traced, _rec = _traced_plan(parity_region, jobs=1)
        assert plan_to_json(untraced) == plan_to_json(traced)

    def test_untraced_plan_keeps_coarse_trace_only(self, parity_region):
        plan = plan_region(parity_region)
        trace = plan.topology.trace
        assert trace is not None
        # Coarse phase spans only — no per-chunk/per-lookup instrumentation.
        names = {rec.name for rec in trace.walk()}
        assert "plan.enumerate" in names and "plan.capacity" in names
        assert not any(name.startswith("engine.chunk:") for name in names)
        assert trace.total("hose.lookups") == 0
