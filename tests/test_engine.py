"""The scenario-parallel execution engine: backends, parity, cache, timings."""

import pytest

from repro.core import engine
from repro.core.engine import (
    BACKEND_NAMES,
    ExecutionBackend,
    PlanTimings,
    ProcessBackend,
    SerialBackend,
    WorkStealingBackend,
    get_backend,
    guided_partition,
    map_in_chunks,
    partition,
    resolve_jobs,
)
from repro.core.hose import clear_hose_cache, hose_cache_stats, hose_capacity
from repro.core.planner import plan_region
from repro.core.topology import plan_topology
from repro.exceptions import InfeasibleRegionError, ReproError
from repro.region.catalog import make_region
from repro.region.fibermap import OperationalConstraints, RegionSpec


def _double_chunk(shared, chunk):
    """Module-level worker (must be picklable for the process backend)."""
    return [shared * item for item in chunk]


class TestResolveJobs:
    def test_defaults_to_serial(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1

    def test_zero_means_all_cpus(self):
        assert resolve_jobs(0) >= 1

    def test_explicit_count(self):
        assert resolve_jobs(3) == 3

    def test_invalid_rejected(self):
        with pytest.raises(ReproError):
            resolve_jobs(-1)
        with pytest.raises(ReproError):
            resolve_jobs(2.5)


class TestPartition:
    def test_preserves_order_and_content(self):
        items = list(range(17))
        chunks = partition(items, 5)
        assert [x for c in chunks for x in c] == items
        assert len(chunks) == 5
        assert max(len(c) for c in chunks) - min(len(c) for c in chunks) <= 1

    def test_more_chunks_than_items(self):
        assert partition([1, 2], 8) == [[1], [2]]

    def test_empty(self):
        assert partition([], 4) == []

    def test_invalid_chunk_count(self):
        with pytest.raises(ReproError):
            partition([1], 0)


class TestGuidedPartition:
    def test_preserves_order_and_content(self):
        items = list(range(100))
        chunks = guided_partition(items, 4)
        assert [x for c in chunks for x in c] == items

    def test_sizes_decrease(self):
        sizes = [len(c) for c in guided_partition(list(range(200)), 4)]
        assert sizes == sorted(sizes, reverse=True)
        # Fine-grained tail: the smallest chunk is min_chunk-sized.
        assert sizes[-1] == 1

    def test_deterministic(self):
        items = list(range(57))
        assert guided_partition(items, 3) == guided_partition(items, 3)

    def test_empty(self):
        assert guided_partition([], 4) == []

    def test_invalid_workers(self):
        with pytest.raises(ReproError):
            guided_partition([1], 0)


class TestBackends:
    def test_get_backend_serial(self):
        assert isinstance(get_backend(1), SerialBackend)
        assert isinstance(get_backend(None), SerialBackend)

    def test_get_backend_parallel_defaults_to_steal(self):
        backend = get_backend(2)
        assert isinstance(backend, WorkStealingBackend)
        assert backend.name == "steal"
        assert backend.jobs == 2
        backend.close()

    def test_get_backend_by_name(self):
        with get_backend(2, "process") as backend:
            assert type(backend) is ProcessBackend
            assert backend.name == "process"
        assert isinstance(get_backend(1, "serial"), SerialBackend)
        # jobs=1 always collapses to serial regardless of the name.
        assert isinstance(get_backend(1, "steal"), SerialBackend)

    def test_get_backend_unknown_name(self):
        with pytest.raises(ReproError):
            get_backend(2, "gpu")

    def test_backends_satisfy_protocol(self):
        assert isinstance(SerialBackend(), ExecutionBackend)
        for name in BACKEND_NAMES:
            backend = get_backend(2, name)
            assert isinstance(backend, ExecutionBackend)
            backend.close()

    def test_serial_map(self):
        with get_backend(1) as backend:
            out = map_in_chunks(backend, _double_chunk, 3, [1, 2, 3, 4])
        assert out == [3, 6, 9, 12]

    def test_process_map_matches_serial(self):
        items = list(range(25))
        with get_backend(2, "process") as backend:
            out = map_in_chunks(backend, _double_chunk, 2, items)
        assert out == [2 * i for i in items]

    def test_steal_map_matches_serial(self):
        items = list(range(25))
        with get_backend(2, "steal") as backend:
            out = map_in_chunks(backend, _double_chunk, 2, items)
        assert out == [2 * i for i in items]

    def test_process_backend_needs_two_workers(self):
        with pytest.raises(ReproError):
            ProcessBackend(1)


class TestSerialNeverSpawnsPool:
    def test_jobs_1_plans_without_pool(self, monkeypatch):
        """The contract the docs promise: ``jobs=1`` must stay in-process."""

        def forbidden(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("jobs=1 spawned a process pool")

        monkeypatch.setattr(engine, "ProcessPoolExecutor", forbidden)
        instance = make_region(map_index=0, n_dcs=4, dc_fibers=4)
        plan = plan_region(instance.spec, jobs=1)
        assert plan.validate() == []
        assert plan.topology.timings.backend == "serial"


class TestSerialParallelParity:
    """ISSUE acceptance: parallel plans bit-identical to serial ones."""

    @pytest.mark.parametrize("map_index,n_dcs", [(0, 5), (1, 4)])
    @pytest.mark.parametrize("tolerance", [1, 2])
    def test_topology_identical(self, map_index, n_dcs, tolerance):
        instance = make_region(
            map_index=map_index,
            n_dcs=n_dcs,
            dc_fibers=8,
            failure_tolerance=tolerance,
        )
        serial = plan_topology(instance.spec, jobs=1)
        parallel = plan_topology(instance.spec, jobs=2)
        assert dict(serial.edge_capacity) == dict(parallel.edge_capacity)
        assert serial.scenario_paths == parallel.scenario_paths
        assert serial.scenario_count_total == parallel.scenario_count_total
        assert serial.scenarios == parallel.scenarios
        # Dataclass equality ignores the (instrumentation-only) timings.
        assert serial == parallel
        assert parallel.timings.backend == "steal"
        assert parallel.timings.jobs == 2

    def test_full_plan_identical(self):
        instance = make_region(map_index=0, n_dcs=5, dc_fibers=8)
        serial = plan_region(instance.spec, jobs=1)
        parallel = plan_region(instance.spec, jobs=2)
        assert serial.topology == parallel.topology
        assert dict(serial.residual) == dict(parallel.residual)
        assert serial.cut_throughs == parallel.cut_throughs
        assert serial.effective_paths == parallel.effective_paths
        assert serial.inventory() == parallel.inventory()

    def test_brute_force_parity(self, toy_region):
        serial = plan_topology(toy_region, prune_enumeration=False, jobs=1)
        parallel = plan_topology(toy_region, prune_enumeration=False, jobs=2)
        assert serial == parallel

    def test_plan_to_json_identical_under_work_stealing(self):
        """ISSUE 6 acceptance: jobs=1 vs jobs=4 byte-identical plans
        under the work-stealing backend."""
        from repro.core.planner import _plan_region
        from repro.serialize import plan_to_json

        instance = make_region(map_index=0, n_dcs=5, dc_fibers=8)
        serial = _plan_region(instance.spec, jobs=1)
        parallel = _plan_region(instance.spec, jobs=4, backend="steal")
        assert plan_to_json(serial) == plan_to_json(parallel)

    def test_static_process_backend_still_selectable(self, toy_region):
        static = plan_topology(toy_region, jobs=2, backend="process")
        stealing = plan_topology(toy_region, jobs=2, backend="steal")
        assert static == stealing
        assert static.timings.backend == "process"
        assert stealing.timings.backend == "steal"


class TestWorkerErrorPropagation:
    def test_infeasible_region_surfaces_from_pool(self, toy_map):
        # The toy map is a tree: any single cut disconnects a pair, and the
        # failing scenario is evaluated inside a worker process.
        region = RegionSpec(
            fiber_map=toy_map,
            dc_fibers={f"DC{i}": 10 for i in range(1, 5)},
            constraints=OperationalConstraints(failure_tolerance=1),
        )
        with pytest.raises(InfeasibleRegionError) as exc:
            plan_topology(region, jobs=2)
        # The diagnostic attributes survive the pickle round-trip.
        assert exc.value.scenario is not None
        assert exc.value.pair is not None


class TestHoseCache:
    def test_stats_count_hits_and_misses(self):
        clear_hose_cache()
        caps = {"A": 4, "B": 7}
        assert hose_capacity([("A", "B")], caps) == 4
        assert hose_capacity([("A", "B")], caps) == 4
        stats = hose_cache_stats()
        assert stats.misses == 1
        assert stats.hits == 1
        assert stats.size == 1
        assert stats.hit_rate == pytest.approx(0.5)

    def test_clear_resets(self):
        hose_capacity([("A", "B")], {"A": 1, "B": 1})
        clear_hose_cache()
        stats = hose_cache_stats()
        assert (stats.hits, stats.misses, stats.size) == (0, 0, 0)
        assert stats.hit_rate == 0.0

    def test_empty_pairs_bypass_cache(self):
        clear_hose_cache()
        assert hose_capacity([], {"A": 1}) == 0
        assert hose_cache_stats().lookups == 0


class TestPlanTimings:
    def test_attached_and_plausible(self, toy_region):
        plan = plan_topology(toy_region)
        t = plan.timings
        assert isinstance(t, PlanTimings)
        assert t.scenarios_evaluated == len(plan.scenario_paths)
        assert t.total_s >= t.enumerate_s + t.capacity_s - 1e-6
        assert t.hose_cache_misses >= 1
        assert 0.0 <= t.hose_cache_hit_rate <= 1.0
        assert t.backend == "serial" and t.jobs == 1

    def test_summary_is_one_line(self, toy_region):
        t = plan_topology(toy_region).timings
        summary = t.summary()
        assert "\n" not in summary
        assert "scenarios" in summary and "backend serial" in summary


class TestCancelToken:
    def test_explicit_cancel_raises_at_checkpoint(self):
        from repro.core.engine import CancelToken
        from repro.exceptions import JobCancelled

        token = CancelToken()
        token.checkpoint()  # not cancelled: no-op
        token.cancel("unit test")
        assert token.cancelled
        with pytest.raises(JobCancelled, match="unit test"):
            token.checkpoint()

    def test_deadline_self_cancels(self):
        from repro.core.engine import CancelToken
        from repro.exceptions import JobCancelled

        token = CancelToken(timeout_s=0.0)
        with pytest.raises(JobCancelled, match="timeout"):
            token.checkpoint()
        assert token.reason == "timeout"

    def test_cancelled_token_stops_serial_planning(self, toy_region):
        from repro.core.engine import CancelToken
        from repro.exceptions import JobCancelled

        token = CancelToken()
        token.cancel()
        with pytest.raises(JobCancelled):
            plan_topology(toy_region, cancel_token=token)

    def test_uncancelled_token_changes_nothing(self, toy_region):
        from repro.core.engine import CancelToken
        from repro.serialize import plan_to_json
        from repro.core.planner import _plan_region

        baseline = plan_to_json(_plan_region(toy_region), full=True)
        tokened = plan_to_json(
            _plan_region(toy_region, cancel_token=CancelToken(timeout_s=600)),
            full=True,
        )
        assert tokened == baseline


class TestPoolInterrupt:
    def test_sigint_terminates_and_joins_workers(self):
        """SIGINT mid-fan-out must not orphan pool workers (subprocess)."""
        import os
        import signal
        import subprocess
        import sys
        import time as time_mod
        from pathlib import Path

        repo = Path(__file__).resolve().parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo / "src")
        proc = subprocess.Popen(
            [sys.executable, str(repo / "tests" / "interrupt_helper.py")],
            env=env,
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            ready = proc.stdout.readline().strip()
            assert ready.startswith("READY "), ready
            worker_pids = [int(p) for p in ready.split()[1:]]
            assert worker_pids
            proc.send_signal(signal.SIGINT)
            out, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        assert proc.returncode == 3, (proc.returncode, out)
        assert "INTERRUPTED clean=True" in out
        # The workers were terminated and joined, not orphaned.
        deadline = time_mod.monotonic() + 10.0
        for pid in worker_pids:
            while time_mod.monotonic() < deadline:
                try:
                    os.kill(pid, 0)
                except ProcessLookupError:
                    break
                time_mod.sleep(0.1)
            else:
                raise AssertionError(f"worker {pid} still alive")

    def test_terminate_is_idempotent(self):
        from repro.core.engine import ProcessBackend

        backend = ProcessBackend(jobs=2)
        backend.terminate()  # never started: no-op
        backend.terminate()
