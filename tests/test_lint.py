"""reprolint: rule fixtures, suppression handling, CLI exit codes.

Each rule gets positive fixtures (violating code that must be flagged) and
negative fixtures (compliant code that must stay clean), run with the rule
isolated so a finding can only come from the rule under test. The final
test lints the shipped ``src/`` tree and requires it clean — the same gate
CI runs via ``iris lint src/``.
"""

from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.lint import (
    Finding,
    LintUsageError,
    all_rules,
    get_rule,
    lint_paths,
    lint_source,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def only(rule_id: str, source: str, path: str = "pkg/mod.py") -> list[Finding]:
    """Lint ``source`` with a single rule active."""
    return lint_source(source, path=path, rules=[get_rule(rule_id)])


class TestRegistry:
    def test_eight_domain_rules_registered(self):
        ids = [r.rule_id for r in all_rules()]
        assert ids == sorted(ids)
        assert {f"R00{i}" for i in range(1, 9)} <= set(ids)

    def test_every_rule_documents_its_invariant(self):
        for rule in all_rules():
            assert rule.title
            assert len(rule.invariant) > 20
            assert rule.node_types


class TestR001GlobalRng:
    @pytest.mark.parametrize(
        "source",
        [
            "import random\nrandom.seed(7)\n",
            "import random\nx = random.randint(0, 5)\n",
            "import random\nrandom.shuffle(items)\n",
            "from random import shuffle\n",
            "import numpy as np\nnp.random.seed(0)\n",
            "import numpy\nnumpy.random.rand(3)\n",
            "from numpy.random import choice\n",
        ],
    )
    def test_flags_global_rng(self, source):
        findings = only("R001", source)
        assert [f.rule_id for f in findings] == ["R001"]

    @pytest.mark.parametrize(
        "source",
        [
            "import random\nrng = random.Random(7)\nrng.shuffle(items)\n",
            "from random import Random\nrng = Random(7)\n",
            "import numpy as np\nrng = np.random.default_rng(7)\n",
            "from numpy.random import default_rng\n",
            "import numpy as np\ng = np.random.Generator(np.random.PCG64(1))\n",
            "value = config.random.choice\n",
        ],
    )
    def test_allows_seeded_instances(self, source):
        assert only("R001", source) == []


class TestR002WallClock:
    @pytest.mark.parametrize(
        "source",
        [
            "import time\nt = time.time()\n",
            "import time\nt = time.time_ns()\n",
            "from time import time\n",
            "import datetime\nnow = datetime.datetime.now()\n",
            "from datetime import datetime\nnow = datetime.now()\n",
            "from datetime import date\ntoday = date.today()\n",
        ],
    )
    def test_flags_wall_clock(self, source):
        findings = only("R002", source)
        assert [f.rule_id for f in findings] == ["R002"]

    @pytest.mark.parametrize(
        "source",
        [
            "import time\nt = time.monotonic()\n",
            "import time\nt = time.perf_counter()\n",
            "from time import monotonic, sleep\n",
            "stamp = record.now\n",  # attribute on a non-datetime root
        ],
    )
    def test_allows_monotonic(self, source):
        assert only("R002", source) == []

    def test_obs_owns_the_wall_clock(self):
        source = "import time\nt = time.time()\n"
        assert only("R002", source, path="src/repro/obs/tracer.py") == []
        assert only("R002", source, path="src/repro/core/engine.py") != []


class TestR003FloatEquality:
    @pytest.mark.parametrize(
        "source",
        [
            "ok = span_km == limit\n",
            "ok = total_gbps != demand\n",
            "ok = x == 0.5\n",
            "ok = link.length_km == other\n",
            "ok = a + offset_km == b\n",
        ],
    )
    def test_flags_float_equality(self, source):
        findings = only("R003", source)
        assert [f.rule_id for f in findings] == ["R003"]

    @pytest.mark.parametrize(
        "source",
        [
            "ok = span_km <= limit_km\n",
            "ok = math.isclose(span_km, limit_km)\n",
            "ok = n_fibers == 8\n",
            "ok = count == 0\n",
            "ok = name == 'DC1'\n",
        ],
    )
    def test_allows_tolerant_or_integer_compares(self, source):
        assert only("R003", source) == []


class TestR004UnorderedIteration:
    @pytest.mark.parametrize(
        "source",
        [
            "for x in set(items):\n    use(x)\n",
            "for x in set(a) | set(b):\n    use(x)\n",
            "for x in {1, 2, 3}:\n    use(x)\n",
            "out = [f(x) for x in set(items)]\n",
            "out = {k: v for k in set(items)}\n",
            "out = list(set(items))\n",
            "out = ','.join(set(names))\n",
            "for x in set(a).union(b):\n    use(x)\n",
        ],
    )
    def test_flags_unordered_iteration(self, source):
        findings = only("R004", source)
        assert [f.rule_id for f in findings] == ["R004"]

    @pytest.mark.parametrize(
        "source",
        [
            "for x in sorted(set(items)):\n    use(x)\n",
            "out = sorted(set(a) | set(b))\n",
            "out = ','.join(sorted(set(names)))\n",
            "total = sum(f(x) for x in set(items))\n",
            "best = max(x for x in set(items))\n",
            "out = {f(x) for x in set(items)}\n",  # set -> set stays unordered
            "n = len(set(items))\n",
            "for x in items:\n    use(x)\n",
        ],
    )
    def test_allows_order_insensitive_consumption(self, source):
        assert only("R004", source) == []


class TestR005ModuleState:
    def test_flags_global_statements(self):
        source = "x = 0\ndef bump():\n    global x\n    x += 1\n"
        findings = only("R005", source)
        assert [f.rule_id for f in findings] == ["R005"]
        assert "'x'" in findings[0].message

    def test_whitelists_hose_cache_and_tracer(self):
        source = "_cache = None\ndef reset():\n    global _cache\n    _cache = 1\n"
        assert only("R005", source, path="src/repro/core/hose.py") == []
        assert only("R005", source, path="src/repro/obs/tracer.py") == []
        assert only("R005", source, path="src/repro/core/engine.py") != []

    def test_allows_nonlocal(self):
        source = (
            "def outer():\n    x = 0\n"
            "    def inner():\n        nonlocal x\n        x += 1\n"
        )
        assert only("R005", source) == []


class TestR006KeywordOnlyConfig:
    def test_flags_positional_config_defaults(self):
        source = "def plan_widget(region, prune=True, jobs=1):\n    pass\n"
        findings = only("R006", source)
        assert [f.rule_id for f in findings] == ["R006", "R006"]
        assert "'prune'" in findings[0].message
        assert "'jobs'" in findings[1].message

    def test_allows_keyword_only_config(self):
        source = "def plan_widget(region, *, prune=True, jobs=1):\n    pass\n"
        assert only("R006", source) == []

    def test_ignores_private_and_unrelated_functions(self):
        assert only("R006", "def _plan_helper(a, b=1):\n    pass\n") == []
        assert only("R006", "def summarize(a, b=1):\n    pass\n") == []

    def test_required_positionals_are_fine(self):
        assert only("R006", "def plan_widget(region, topology):\n    pass\n") == []


class TestR007UnitMixing:
    @pytest.mark.parametrize(
        "source",
        [
            "total = span_km + tail_m\n",
            "delta = start_s - offset_ms\n",
            "ok = rate_gbps < limit_bps\n",
            "bad = fiber_km + duration_s\n",
        ],
    )
    def test_flags_unit_mixing(self, source):
        findings = only("R007", source)
        assert [f.rule_id for f in findings] == ["R007"]

    @pytest.mark.parametrize(
        "source",
        [
            "total = span_km + tail_km\n",
            "ratio = span_km / duration_s\n",  # division builds new units
            "scaled = span_km * 2\n",
            "budget = gain_db - loss_db\n",
            "power = launch_dbm - loss_db\n",  # dBm +/- dB is the link-budget idiom
            "x = alpha + beta\n",
        ],
    )
    def test_allows_consistent_units(self, source):
        assert only("R007", source) == []


class TestR008AtomicStoreWrites:
    STORE_PATH = "src/repro/store/cas.py"

    @pytest.mark.parametrize(
        "source",
        [
            'def save(path, text):\n    with open(path, "w") as fh:\n        fh.write(text)\n',
            'def save(path, text):\n    with open(path, mode="a") as fh:\n        fh.write(text)\n',
            "def save(path, text):\n    path.write_text(text)\n",
            "def save(path, data):\n    path.write_bytes(data)\n",
            'open("index.json", "w")\n',  # module-level write
        ],
    )
    def test_flags_non_atomic_store_writes(self, source):
        findings = only("R008", source, path=self.STORE_PATH)
        assert [f.rule_id for f in findings] == ["R008"]

    @pytest.mark.parametrize(
        "source",
        [
            # the blessed idiom: tmp file + os.replace in the same scope
            'import os\ndef save(path, tmp, text):\n    with open(tmp, "w") as fh:\n        fh.write(text)\n    os.replace(tmp, path)\n',
            "import os\ndef save(path, tmp, text):\n    tmp.write_text(text)\n    os.replace(tmp, path)\n",
            # reads are always fine
            'def load(path):\n    return open(path, "r").read()\n',
            "def load(path):\n    return path.read_text()\n",
            # dynamic modes are invisible to the syntactic rule
            "def save(path, mode, text):\n    open(path, mode)\n",
        ],
    )
    def test_allows_atomic_idiom_and_reads(self, source):
        assert only("R008", source, path=self.STORE_PATH) == []

    def test_scoped_to_the_store_package(self):
        source = "def save(path, text):\n    path.write_text(text)\n"
        assert only("R008", source, path="src/repro/serialize.py") == []
        assert only("R008", source, path=self.STORE_PATH) != []

    def test_nested_scopes_are_independent(self):
        # The outer function's os.replace must not bless a nested
        # function's bare write.
        source = (
            "import os\n"
            "def outer(path, tmp, text):\n"
            "    def inner(p, t):\n"
            "        p.write_text(t)\n"
            "    os.replace(tmp, path)\n"
        )
        findings = only("R008", source, path=self.STORE_PATH)
        assert [f.rule_id for f in findings] == ["R008"]


class TestSuppression:
    def test_bare_noqa_suppresses_everything(self):
        source = "import random\nrandom.seed(1)  # repro: noqa\n"
        assert lint_source(source) == []

    def test_targeted_noqa_suppresses_one_rule(self):
        source = "import random\nrandom.seed(1)  # repro: noqa-R001\n"
        assert lint_source(source) == []

    def test_wrong_rule_id_does_not_suppress(self):
        source = "import random\nrandom.seed(1)  # repro: noqa-R004\n"
        assert [f.rule_id for f in lint_source(source)] == ["R001"]

    def test_multiple_rule_ids(self):
        source = (
            "import random\nimport time\n"
            "x = (random.seed(1), time.time())  # repro: noqa-R001,R002\n"
        )
        assert lint_source(source) == []

    def test_suppression_is_per_line(self):
        source = (
            "import random\n"
            "random.seed(1)  # repro: noqa-R001\n"
            "random.seed(2)\n"
        )
        findings = lint_source(source)
        assert [(f.rule_id, f.line) for f in findings] == [("R001", 3)]


class TestDriver:
    def test_syntax_error_is_a_finding_not_a_crash(self):
        findings = lint_source("def broken(:\n", path="bad.py")
        assert [f.rule_id for f in findings] == ["R000"]
        assert findings[0].path == "bad.py"

    def test_findings_sort_by_position(self):
        source = "import time\nb = time.time()\nimport random\na = random.seed(1)\n"
        findings = lint_source(source)
        assert [f.line for f in findings] == sorted(f.line for f in findings)

    def test_format_is_clickable(self):
        finding = lint_source("x = 1.0 == y\n", path="m.py")[0]
        assert finding.format().startswith("m.py:1:")
        assert "R003" in finding.format()

    def test_lint_paths_walks_directories(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        sub = tmp_path / "sub"
        sub.mkdir()
        (sub / "bad.py").write_text("import random\nrandom.seed(1)\n")
        findings = lint_paths([tmp_path])
        assert [f.rule_id for f in findings] == ["R001"]

    def test_missing_path_is_a_usage_error(self, tmp_path):
        with pytest.raises(LintUsageError):
            lint_paths([tmp_path / "missing"])

    def test_no_python_files_is_a_usage_error(self, tmp_path):
        (tmp_path / "notes.txt").write_text("nothing here\n")
        with pytest.raises(LintUsageError):
            lint_paths([tmp_path])


class TestCliExitCodes:
    def test_exit_0_on_clean_tree(self, tmp_path, capsys):
        (tmp_path / "clean.py").write_text("x = 1\n")
        assert cli_main(["lint", str(tmp_path)]) == 0

    def test_exit_1_on_findings(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import random\nrandom.seed(1)\n")
        assert cli_main(["lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "R001" in out and "bad.py:2:" in out

    def test_exit_2_on_usage_error(self, tmp_path, capsys):
        assert cli_main(["lint", str(tmp_path / "missing")]) == 2
        assert "usage error" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("R001", "R004", "R007"):
            assert rule_id in out


class TestShippedTreeIsClean:
    def test_src_passes_reprolint(self):
        assert lint_paths([REPO_ROOT / "src"]) == []
