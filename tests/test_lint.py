"""reprolint: rule fixtures, suppression handling, CLI exit codes.

Each rule gets positive fixtures (violating code that must be flagged) and
negative fixtures (compliant code that must stay clean), run with the rule
isolated so a finding can only come from the rule under test. Since the v2
flow-sensitive engine, most rule classes also carry *aliased* fixtures —
the violation bound to a name first, reaching the sink through the symbol
table — and matching ``sorted()`` re-tagging negatives. The final test
lints the shipped ``src/`` tree and requires it clean — the same gate CI
runs via ``iris lint src/``.
"""

import json

from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.cli import main as cli_main
from repro.lint import (
    Finding,
    LintUsageError,
    all_rules,
    get_rule,
    lint_paths,
    lint_source,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def only(rule_id: str, source: str, path: str = "pkg/mod.py") -> list[Finding]:
    """Lint ``source`` with a single rule active."""
    return lint_source(source, path=path, rules=[get_rule(rule_id)])


class TestRegistry:
    def test_fourteen_domain_rules_registered(self):
        ids = [r.rule_id for r in all_rules()]
        assert ids == sorted(ids)
        expected = {f"R00{i}" for i in range(1, 10)} | {
            "R010",
            "R011",
            "R012",
            "R013",
            "R014",
        }
        assert expected <= set(ids)

    def test_every_rule_documents_its_invariant(self):
        for rule in all_rules():
            assert rule.title
            assert len(rule.invariant) > 20
            assert rule.node_types


class TestR001GlobalRng:
    @pytest.mark.parametrize(
        "source",
        [
            "import random\nrandom.seed(7)\n",
            "import random\nx = random.randint(0, 5)\n",
            "import random\nrandom.shuffle(items)\n",
            "from random import shuffle\n",
            "import numpy as np\nnp.random.seed(0)\n",
            "import numpy\nnumpy.random.rand(3)\n",
            "from numpy.random import choice\n",
        ],
    )
    def test_flags_global_rng(self, source):
        findings = only("R001", source)
        assert [f.rule_id for f in findings] == ["R001"]

    @pytest.mark.parametrize(
        "source",
        [
            "import random\nrng = random.Random(7)\nrng.shuffle(items)\n",
            "from random import Random\nrng = Random(7)\n",
            "import numpy as np\nrng = np.random.default_rng(7)\n",
            "from numpy.random import default_rng\n",
            "import numpy as np\ng = np.random.Generator(np.random.PCG64(1))\n",
            "value = config.random.choice\n",
        ],
    )
    def test_allows_seeded_instances(self, source):
        assert only("R001", source) == []


class TestR002WallClock:
    @pytest.mark.parametrize(
        "source",
        [
            "import time\nt = time.time()\n",
            "import time\nt = time.time_ns()\n",
            "from time import time\n",
            "import datetime\nnow = datetime.datetime.now()\n",
            "from datetime import datetime\nnow = datetime.now()\n",
            "from datetime import date\ntoday = date.today()\n",
        ],
    )
    def test_flags_wall_clock(self, source):
        findings = only("R002", source)
        assert [f.rule_id for f in findings] == ["R002"]

    @pytest.mark.parametrize(
        "source",
        [
            "import time\nt = time.monotonic()\n",
            "import time\nt = time.perf_counter()\n",
            "from time import monotonic, sleep\n",
            "stamp = record.now\n",  # attribute on a non-datetime root
        ],
    )
    def test_allows_monotonic(self, source):
        assert only("R002", source) == []

    def test_obs_owns_the_wall_clock(self):
        source = "import time\nt = time.time()\n"
        assert only("R002", source, path="src/repro/obs/tracer.py") == []
        assert only("R002", source, path="src/repro/core/engine.py") != []


class TestR003FloatEquality:
    @pytest.mark.parametrize(
        "source",
        [
            "ok = span_km == limit\n",
            "ok = total_gbps != demand\n",
            "ok = x == 0.5\n",
            "ok = link.length_km == other\n",
            "ok = a + offset_km == b\n",
        ],
    )
    def test_flags_float_equality(self, source):
        findings = only("R003", source)
        assert [f.rule_id for f in findings] == ["R003"]

    @pytest.mark.parametrize(
        "source",
        [
            "ok = span_km <= limit_km\n",
            "ok = math.isclose(span_km, limit_km)\n",
            "ok = n_fibers == 8\n",
            "ok = count == 0\n",
            "ok = name == 'DC1'\n",
        ],
    )
    def test_allows_tolerant_or_integer_compares(self, source):
        assert only("R003", source) == []

    def test_flow_catches_aliased_quantity(self):
        # v1 saw plain names 'x' and 'limit'; v2 knows x carries km.
        source = "x = span_km\nok = x == limit\n"
        findings = only("R003", source)
        assert [f.rule_id for f in findings] == ["R003"]
        assert "_km" in findings[0].message

    def test_alias_of_untagged_value_stays_clean(self):
        assert only("R003", "x = count\nok = x == limit\n") == []


class TestR004UnorderedIteration:
    @pytest.mark.parametrize(
        "source",
        [
            "for x in set(items):\n    use(x)\n",
            "for x in set(a) | set(b):\n    use(x)\n",
            "for x in {1, 2, 3}:\n    use(x)\n",
            "out = [f(x) for x in set(items)]\n",
            "out = {k: v for k in set(items)}\n",
            "out = list(set(items))\n",
            "out = ','.join(set(names))\n",
            "for x in set(a).union(b):\n    use(x)\n",
        ],
    )
    def test_flags_unordered_iteration(self, source):
        findings = only("R004", source)
        assert [f.rule_id for f in findings] == ["R004"]

    @pytest.mark.parametrize(
        "source",
        [
            "for x in sorted(set(items)):\n    use(x)\n",
            "out = sorted(set(a) | set(b))\n",
            "out = ','.join(sorted(set(names)))\n",
            "total = sum(f(x) for x in set(items))\n",
            "best = max(x for x in set(items))\n",
            "out = {f(x) for x in set(items)}\n",  # set -> set stays unordered
            "n = len(set(items))\n",
            "for x in items:\n    use(x)\n",
        ],
    )
    def test_allows_order_insensitive_consumption(self, source):
        assert only("R004", source) == []

    # --- flow-sensitive: the set reaches the loop through an alias ---

    @pytest.mark.parametrize(
        "source",
        [
            "s = set(items)\nfor x in s:\n    use(x)\n",
            "s = {1, 2, 3}\nfor x in s:\n    use(x)\n",
            "s = set(a) | set(b)\nfor x in s:\n    use(x)\n",
            "s = set(items)\nt = s\nfor x in t:\n    use(x)\n",  # two hops
            "s = set(items)\nout = [f(x) for x in s]\n",
            "s = set(items)\nout = list(s)\n",
            "s = set(items)\nout = ','.join(s)\n",
            "s = {f(x) for x in items}\nfor x in s:\n    use(x)\n",
        ],
    )
    def test_flow_flags_aliased_sets(self, source):
        findings = only("R004", source)
        assert [f.rule_id for f in findings] == ["R004"]

    @pytest.mark.parametrize(
        "source",
        [
            # sorted() re-tags the value ordered: the alias is then safe.
            "s = sorted(set(items))\nfor x in s:\n    use(x)\n",
            "s = set(items)\nt = sorted(s)\nfor x in t:\n    use(x)\n",
            "s = set(items)\ntotal = sum(s)\n",
            "s = set(items)\nn = len(s)\n",
            # Rebinding the name to an ordered value clears the tag.
            "s = set(items)\ns = sorted(s)\nfor x in s:\n    use(x)\n",
            "s = [1, 2, 3]\nfor x in s:\n    use(x)\n",
        ],
    )
    def test_flow_respects_sorted_retagging(self, source):
        assert only("R004", source) == []

    def test_finding_names_the_origin(self):
        findings = only("R004", "s = set(items)\nfor x in s:\n    use(x)\n")
        assert len(findings) == 1
        assert "line 1" in findings[0].message

    def test_branch_join_keeps_the_unordered_arm(self):
        source = (
            "if flag:\n    s = set(items)\n"
            "else:\n    s = list(items)\n"
            "for x in s:\n    use(x)\n"
        )
        findings = only("R004", source)
        assert [f.rule_id for f in findings] == ["R004"]

    def test_function_boundaries_reset_the_env(self):
        # Intra-procedural only: a set bound in one function must not
        # taint the same name in another.
        source = (
            "def a(items):\n    s = set(items)\n    return len(s)\n"
            "def b(s):\n    for x in s:\n        use(x)\n"
        )
        assert only("R004", source) == []


class TestR005ModuleState:
    def test_flags_global_statements(self):
        source = "x = 0\ndef bump():\n    global x\n    x += 1\n"
        findings = only("R005", source)
        assert [f.rule_id for f in findings] == ["R005"]
        assert "'x'" in findings[0].message

    def test_whitelists_hose_cache_and_tracer(self):
        source = "_cache = None\ndef reset():\n    global _cache\n    _cache = 1\n"
        assert only("R005", source, path="src/repro/core/hose.py") == []
        assert only("R005", source, path="src/repro/obs/tracer.py") == []
        assert only("R005", source, path="src/repro/core/engine.py") != []

    def test_allows_nonlocal(self):
        source = (
            "def outer():\n    x = 0\n"
            "    def inner():\n        nonlocal x\n        x += 1\n"
        )
        assert only("R005", source) == []


class TestR006KeywordOnlyConfig:
    def test_flags_positional_config_defaults(self):
        source = "def plan_widget(region, prune=True, jobs=1):\n    pass\n"
        findings = only("R006", source)
        assert [f.rule_id for f in findings] == ["R006", "R006"]
        assert "'prune'" in findings[0].message
        assert "'jobs'" in findings[1].message

    def test_allows_keyword_only_config(self):
        source = "def plan_widget(region, *, prune=True, jobs=1):\n    pass\n"
        assert only("R006", source) == []

    def test_ignores_private_and_unrelated_functions(self):
        assert only("R006", "def _plan_helper(a, b=1):\n    pass\n") == []
        assert only("R006", "def summarize(a, b=1):\n    pass\n") == []

    def test_required_positionals_are_fine(self):
        assert only("R006", "def plan_widget(region, topology):\n    pass\n") == []


class TestR007UnitMixing:
    @pytest.mark.parametrize(
        "source",
        [
            "total = span_km + tail_m\n",
            "delta = start_s - offset_ms\n",
            "ok = rate_gbps < limit_bps\n",
            "bad = fiber_km + duration_s\n",
        ],
    )
    def test_flags_unit_mixing(self, source):
        findings = only("R007", source)
        assert [f.rule_id for f in findings] == ["R007"]

    @pytest.mark.parametrize(
        "source",
        [
            "total = span_km + tail_km\n",
            "ratio = span_km / duration_s\n",  # division builds new units
            "scaled = span_km * 2\n",
            "budget = gain_db - loss_db\n",
            "power = launch_dbm - loss_db\n",  # dBm +/- dB is the link-budget idiom
            "x = alpha + beta\n",
        ],
    )
    def test_allows_consistent_units(self, source):
        assert only("R007", source) == []

    # --- flow-sensitive: the unit travels through an alias ---

    @pytest.mark.parametrize(
        "source",
        [
            "x = span_km\ny = x + loss_db\n",
            "x = span_km\ny = x\nz = y + duration_s\n",  # two hops
            "x = span_km + tail_km\ny = x + loss_db\n",  # through arithmetic
            "x = span_km\nok = x < duration_s\n",
        ],
    )
    def test_flow_flags_aliased_unit_mixing(self, source):
        findings = only("R007", source)
        assert [f.rule_id for f in findings] == ["R007"]

    @pytest.mark.parametrize(
        "source",
        [
            "x = span_km\ny = x + tail_km\n",
            "x = span_km\nx = duration_s\ny = x + offset_s\n",  # rebound
            "x = span_km / duration_s\ny = x + rate_gbps\n",  # division clears
            "x = launch_dbm\ny = x - loss_db\n",  # budget idiom via alias
        ],
    )
    def test_flow_allows_consistent_aliases(self, source):
        assert only("R007", source) == []

    def test_cross_dimension_mixing_is_called_out(self):
        findings = only("R007", "bad = fiber_km + duration_s\n")
        assert "never makes sense" in findings[0].message


class TestR008AtomicStoreWrites:
    STORE_PATH = "src/repro/store/cas.py"

    @pytest.mark.parametrize(
        "source",
        [
            'def save(path, text):\n    with open(path, "w") as fh:\n        fh.write(text)\n',
            'def save(path, text):\n    with open(path, mode="a") as fh:\n        fh.write(text)\n',
            "def save(path, text):\n    path.write_text(text)\n",
            "def save(path, data):\n    path.write_bytes(data)\n",
            'open("index.json", "w")\n',  # module-level write
        ],
    )
    def test_flags_non_atomic_store_writes(self, source):
        findings = only("R008", source, path=self.STORE_PATH)
        assert [f.rule_id for f in findings] == ["R008"]

    @pytest.mark.parametrize(
        "source",
        [
            # the blessed idiom: tmp file + os.replace in the same scope
            'import os\ndef save(path, tmp, text):\n    with open(tmp, "w") as fh:\n        fh.write(text)\n    os.replace(tmp, path)\n',
            "import os\ndef save(path, tmp, text):\n    tmp.write_text(text)\n    os.replace(tmp, path)\n",
            # reads are always fine
            'def load(path):\n    return open(path, "r").read()\n',
            "def load(path):\n    return path.read_text()\n",
            # dynamic modes are invisible to the syntactic rule
            "def save(path, mode, text):\n    open(path, mode)\n",
        ],
    )
    def test_allows_atomic_idiom_and_reads(self, source):
        assert only("R008", source, path=self.STORE_PATH) == []

    def test_scoped_to_the_store_package(self):
        source = "def save(path, text):\n    path.write_text(text)\n"
        assert only("R008", source, path="src/repro/serialize.py") == []
        assert only("R008", source, path=self.STORE_PATH) != []

    def test_nested_scopes_are_independent(self):
        # The outer function's os.replace must not bless a nested
        # function's bare write.
        source = (
            "import os\n"
            "def outer(path, tmp, text):\n"
            "    def inner(p, t):\n"
            "        p.write_text(t)\n"
            "    os.replace(tmp, path)\n"
        )
        findings = only("R008", source, path=self.STORE_PATH)
        assert [f.rule_id for f in findings] == ["R008"]


class TestR009UnorderedSerialization:
    @pytest.mark.parametrize(
        "source",
        [
            "canonical_json(set(items))\n",
            "key = artifact_key(kind, {'pairs': set(pairs)})\n",
            "s = set(items)\ndigest = store.digest(s)\n",
            # The ISSUE acceptance fixture: an unordered dict-of-set payload
            # reaching the canonical encoder through an alias.
            (
                "payload = {'reachable': {f(x) for x in pairs}}\n"
                "blob = canonical_json(payload)\n"
            ),
            "doc = json.dumps(set(names))\n",
        ],
    )
    def test_flags_unordered_reaching_sinks(self, source):
        findings = only("R009", source)
        assert [f.rule_id for f in findings] == ["R009"]

    @pytest.mark.parametrize(
        "source",
        [
            "canonical_json(sorted(set(items)))\n",
            "s = sorted(set(items))\nblob = canonical_json(s)\n",
            (
                "payload = {'reachable': sorted({f(x) for x in pairs})}\n"
                "blob = canonical_json(payload)\n"
            ),
            "blob = canonical_json({'pairs': list(pairs)})\n",
            # Non-sink calls never fire, however unordered the argument.
            "use(set(items))\n",
        ],
    )
    def test_sorted_payloads_are_clean(self, source):
        assert only("R009", source) == []

    def test_message_explains_the_hazard(self):
        findings = only("R009", "canonical_json(set(items))\n")
        assert "canonical_json" in findings[0].message
        assert "sort" in findings[0].message


class TestR010ReturnUnitSuffix:
    def test_flags_mismatched_return_unit(self):
        source = "def reach_km(path):\n    return path.loss_db\n"
        findings = only("R010", source)
        assert [f.rule_id for f in findings] == ["R010"]
        assert "'_km'" in findings[0].message and "'_db'" in findings[0].message

    def test_flags_mismatch_through_alias(self):
        source = (
            "def total_km(spans):\n"
            "    total_s = sum_durations(spans)\n"
            "    return total_s\n"
        )
        findings = only("R010", source)
        assert [f.rule_id for f in findings] == ["R010"]

    @pytest.mark.parametrize(
        "source",
        [
            "def reach_km(path):\n    return path.length_km\n",
            "def reach_km(path):\n    x = span_km\n    return x\n",
            # Untagged returns are unknown, not violations.
            "def reach_km(path):\n    return compute(path)\n",
            # Unsuffixed functions have nothing to check.
            "def reach(path):\n    return path.loss_db\n",
            # Link-budget arithmetic resolves to the declared unit.
            "def power_dbm(launch_dbm, loss_db):\n    return launch_dbm - loss_db\n",
        ],
    )
    def test_consistent_or_unknown_returns_are_clean(self, source):
        assert only("R010", source) == []

    def test_each_bad_return_is_flagged(self):
        source = (
            "def reach_km(path, fast):\n"
            "    if fast:\n        return path.loss_db\n"
            "    return path.t_s\n"
        )
        findings = only("R010", source)
        assert [f.rule_id for f in findings] == ["R010", "R010"]
        assert findings[0].line < findings[1].line


class TestR011ObsDiscipline:
    def test_flags_direct_span_construction(self):
        for ctor in ("Span", "SpanRecord"):
            findings = only("R011", f"s = {ctor}('plan', t0=0.0)\n")
            assert [f.rule_id for f in findings] == ["R011"]

    def test_flags_never_entered_span_statement(self):
        source = "obs.span('plan.solve')\nsolve()\n"
        findings = only("R011", source)
        assert [f.rule_id for f in findings] == ["R011"]
        assert "never entered" in findings[0].message

    def test_flags_unordered_counter_key(self):
        source = "s = set(pairs)\nspan.incr(','.join(s), 1)\n"
        findings = only("R011", source)
        assert "R011" in [f.rule_id for f in findings]

    @pytest.mark.parametrize(
        "source",
        [
            "with obs.span('plan.solve') as span:\n    solve()\n",
            "with tracer.span('x') as span:\n    span.incr('plan.steps', 1)\n",
            "span.incr('flowsim.flows', n)\n",
            "s = sorted(set(pairs))\nspan.incr(','.join(s), 1)\n",
        ],
    )
    def test_facade_idiom_is_clean(self, source):
        assert only("R011", source) == []

    def test_obs_package_is_exempt(self):
        source = "s = SpanRecord('plan', t0=0.0)\n"
        assert only("R011", source, path="src/repro/obs/tracer.py") == []
        assert only("R011", source, path="src/repro/core/engine.py") != []


class TestSuppression:
    def test_bare_noqa_suppresses_everything(self):
        source = "import random\nrandom.seed(1)  # repro: noqa\n"
        assert lint_source(source) == []

    def test_targeted_noqa_suppresses_one_rule(self):
        source = "import random\nrandom.seed(1)  # repro: noqa-R001\n"
        assert lint_source(source) == []

    def test_wrong_rule_id_does_not_suppress(self):
        source = "import random\nrandom.seed(1)  # repro: noqa-R004\n"
        assert [f.rule_id for f in lint_source(source)] == ["R001"]

    def test_multiple_rule_ids(self):
        source = (
            "import random\nimport time\n"
            "x = (random.seed(1), time.time())  # repro: noqa-R001,R002\n"
        )
        assert lint_source(source) == []

    def test_suppression_is_per_line(self):
        source = (
            "import random\n"
            "random.seed(1)  # repro: noqa-R001\n"
            "random.seed(2)\n"
        )
        findings = lint_source(source)
        assert [(f.rule_id, f.line) for f in findings] == [("R001", 3)]

    def test_noqa_on_any_line_of_a_wrapped_statement(self):
        # black wraps the call; the finding reports line 2 (the statement
        # start) while the comment sits on the argument line. Both comment
        # placements must suppress it.
        source = (
            "import random\n"
            "random.seed(\n"
            "    1,  # repro: noqa-R001\n"
            ")\n"
        )
        assert lint_source(source) == []
        source_first_line = (
            "import random\n"
            "random.seed(  # repro: noqa-R001\n"
            "    1,\n"
            ")\n"
        )
        assert lint_source(source_first_line) == []

    def test_noqa_in_function_body_does_not_cover_the_def_line(self):
        # Compound statements contribute only their header span: a noqa
        # buried in the body must not suppress a finding on the def line.
        source = (
            "def plan_widget(region, prune=True):\n"
            "    x = 1  # repro: noqa-R006\n"
            "    return x\n"
        )
        findings = lint_source(source, rules=[get_rule("R006")])
        assert [f.rule_id for f in findings] == ["R006"]

    def test_noqa_text_inside_a_docstring_is_not_a_suppression(self):
        source = (
            '"""Suppress with  # repro: noqa-R001  on the line."""\n'
            "import random\n"
            "random.seed(1)\n"
        )
        findings = lint_source(source)
        assert [f.rule_id for f in findings] == ["R001"]


class TestUnusedNoqaR900:
    def test_unused_suppression_is_reported(self):
        source = "x = 1  # repro: noqa-R004\n"
        findings = lint_source(source, report_unused_noqa=True)
        assert [f.rule_id for f in findings] == ["R900"]
        assert "noqa-R004" in findings[0].message

    def test_used_suppression_is_not_reported(self):
        source = "import random\nrandom.seed(1)  # repro: noqa-R001\n"
        assert lint_source(source, report_unused_noqa=True) == []

    def test_default_mode_stays_silent_about_unused_noqa(self):
        assert lint_source("x = 1  # repro: noqa\n") == []

    def test_docstring_mention_is_not_an_unused_suppression(self):
        source = '"""Docs mention  # repro: noqa  syntax."""\nx = 1\n'
        assert lint_source(source, report_unused_noqa=True) == []

    def test_r900_points_at_the_comment(self):
        source = "x = 1\ny = 2  # repro: noqa\n"
        finding = lint_source(source, report_unused_noqa=True)[0]
        assert finding.line == 2
        assert finding.col == 8


class TestDriver:
    def test_syntax_error_is_a_finding_not_a_crash(self):
        findings = lint_source("def broken(:\n", path="bad.py")
        assert [f.rule_id for f in findings] == ["R000"]
        assert findings[0].path == "bad.py"

    def test_findings_sort_by_position(self):
        source = "import time\nb = time.time()\nimport random\na = random.seed(1)\n"
        findings = lint_source(source)
        assert [f.line for f in findings] == sorted(f.line for f in findings)

    def test_format_is_clickable(self):
        finding = lint_source("x = 1.0 == y\n", path="m.py")[0]
        assert finding.format().startswith("m.py:1:")
        assert "R003" in finding.format()

    def test_lint_paths_walks_directories(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        sub = tmp_path / "sub"
        sub.mkdir()
        (sub / "bad.py").write_text("import random\nrandom.seed(1)\n")
        findings = lint_paths([tmp_path])
        assert [f.rule_id for f in findings] == ["R001"]

    def test_missing_path_is_a_usage_error(self, tmp_path):
        with pytest.raises(LintUsageError):
            lint_paths([tmp_path / "missing"])

    def test_no_python_files_is_a_usage_error(self, tmp_path):
        (tmp_path / "notes.txt").write_text("nothing here\n")
        with pytest.raises(LintUsageError):
            lint_paths([tmp_path])

    def test_broken_file_does_not_hide_findings_in_the_rest(self, tmp_path):
        (tmp_path / "broken.py").write_text("def broken(:\n")
        (tmp_path / "bad.py").write_text("import random\nrandom.seed(1)\n")
        findings = lint_paths([tmp_path])
        assert sorted(f.rule_id for f in findings) == ["R000", "R001"]

    def test_non_utf8_file_is_an_r000_finding(self, tmp_path):
        evil = tmp_path / "latin.py"
        evil.write_bytes(b"# caf\xe9\nx = 1\n")
        (tmp_path / "ok.py").write_text("x = 1\n")
        findings = lint_paths([tmp_path])
        assert [f.rule_id for f in findings] == ["R000"]
        assert findings[0].path.endswith("latin.py")
        assert "UTF-8" in findings[0].message


class TestCliExitCodes:
    def test_exit_0_on_clean_tree(self, tmp_path, capsys):
        (tmp_path / "clean.py").write_text("x = 1\n")
        assert cli_main(["lint", str(tmp_path)]) == 0

    def test_exit_1_on_findings(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import random\nrandom.seed(1)\n")
        assert cli_main(["lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "R001" in out and "bad.py:2:" in out

    def test_exit_2_on_usage_error(self, tmp_path, capsys):
        assert cli_main(["lint", str(tmp_path / "missing")]) == 2
        assert "usage error" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("R001", "R004", "R007", "R009", "R010", "R011"):
            assert rule_id in out

    def test_json_format_emits_machine_readable_findings(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(
            "import random\nrandom.seed(1)\ns = set(x)\nfor i in s:\n    f(i)\n"
        )
        assert cli_main(["lint", str(tmp_path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        rules = [f["rule"] for f in payload["findings"]]
        assert rules == ["R001", "R004"]
        first = payload["findings"][0]
        assert set(first) == {"path", "line", "col", "rule", "message", "fixable"}
        assert payload["summary"] == {"findings": 2, "files_flagged": 1}

    def test_json_format_on_a_clean_tree(self, tmp_path, capsys):
        (tmp_path / "clean.py").write_text("x = 1\n")
        assert cli_main(["lint", str(tmp_path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []
        assert payload["summary"]["findings"] == 0

    def test_report_unused_noqa_flag(self, tmp_path, capsys):
        (tmp_path / "stale.py").write_text("x = 1  # repro: noqa-R004\n")
        assert cli_main(["lint", str(tmp_path)]) == 0
        assert cli_main(["lint", str(tmp_path), "--report-unused-noqa"]) == 1
        out = capsys.readouterr().out
        assert "R900" in out


# Statement templates the property test assembles into random modules. Some
# violate rules, some are clean, some carry suppressions; the invariant
# under test must hold for every interleaving.
_PROPERTY_SNIPPETS = [
    "import random\n",
    "random.seed(1)\n",
    "random.seed(2)  # repro: noqa-R001\n",
    "s = set(items)\n",
    "for x in s:\n    use(x)\n",
    "for x in set(items):\n    use(x)  # repro: noqa\n",
    "t = sorted(set(items))\n",
    "ok = span_km == limit\n",
    "ok = span_km == limit  # repro: noqa-R003\n",
    "y = span_km + loss_db\n",
    "x = 1\n",
]


class TestSuppressionProperty:
    @given(st.lists(st.sampled_from(range(len(_PROPERTY_SNIPPETS))), max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_suppressed_findings_subset_of_unsuppressed(self, picks):
        source = "".join(_PROPERTY_SNIPPETS[i] for i in picks)
        stripped_lines = []
        for line in source.splitlines():
            comment = line.find("#")
            stripped_lines.append(line[:comment].rstrip() if comment >= 0 else line)
        stripped = "\n".join(stripped_lines) + "\n" if stripped_lines else ""

        with_noqa = {
            (f.line, f.rule_id) for f in lint_source(source, path="prop.py")
        }
        without_noqa = {
            (f.line, f.rule_id) for f in lint_source(stripped, path="prop.py")
        }
        # Suppressions only ever remove findings; they never create or
        # move one. (Comment stripping cannot change any other line.)
        assert with_noqa <= without_noqa


class TestShippedTreeIsClean:
    def test_src_passes_reprolint(self):
        assert lint_paths([REPO_ROOT / "src"]) == []

    def test_src_has_no_stale_suppressions(self):
        findings = lint_paths([REPO_ROOT / "src"], report_unused_noqa=True)
        assert [f for f in findings if f.rule_id == "R900"] == []
