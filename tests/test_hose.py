"""Hose-model max-flow capacity (§4.1, [29]) and its incremental solver."""

import random

from hypothesis import given, settings, strategies as st

from repro.core.hose import (
    _hose_max_flow,
    clear_hose_cache,
    configure_hose_cache,
    hose_cache_stats,
    hose_capacity,
    naive_sum_capacity,
    oriented_pairs_through_edge,
)


class TestOrientedPairs:
    def test_trunk_carries_cross_pairs(self, toy_map):
        paths = {}
        for a, b in toy_map.dc_pairs():
            _, p = toy_map.shortest_path(a, b)
            paths[(a, b)] = tuple(p)
        oriented = oriented_pairs_through_edge(("H1", "H2"), paths)
        # Exactly the four cross pairs, oriented left-to-right.
        assert sorted(oriented) == [
            ("DC1", "DC3"),
            ("DC1", "DC4"),
            ("DC2", "DC3"),
            ("DC2", "DC4"),
        ]

    def test_spoke_carries_three_pairs(self, toy_map):
        paths = {}
        for a, b in toy_map.dc_pairs():
            _, p = toy_map.shortest_path(a, b)
            paths[(a, b)] = tuple(p)
        oriented = oriented_pairs_through_edge(("DC1", "H1"), paths)
        assert sorted(oriented) == [
            ("DC1", "DC2"),
            ("DC1", "DC3"),
            ("DC1", "DC4"),
        ]

    def test_orientation_flips_with_direction(self):
        paths = {("A", "B"): ("B", "X", "A")}  # stored reversed
        oriented = oriented_pairs_through_edge(("A", "X"), paths)
        # The pair key's path runs B->A, crossing X->A, i.e. from B's side.
        assert oriented == [("B", "A")]


class TestHoseCapacity:
    def test_toy_trunk_is_twenty(self, toy_region):
        # §3.4: "L5 carries 20 fiber-pairs, such that the network is
        # non-blocking" — not the naive 4 x 10 = 40.
        pairs = [("DC1", "DC3"), ("DC1", "DC4"), ("DC2", "DC3"), ("DC2", "DC4")]
        assert hose_capacity(pairs, toy_region.dc_fibers) == 20
        assert naive_sum_capacity(pairs, toy_region.dc_fibers) == 40

    def test_spoke_is_dc_capacity(self, toy_region):
        pairs = [("DC1", "DC2"), ("DC1", "DC3"), ("DC1", "DC4")]
        # DC1's egress caps everything at 10 despite 3 x 10 naive.
        assert hose_capacity(pairs, toy_region.dc_fibers) == 10

    def test_empty_pairs(self, toy_region):
        assert hose_capacity([], toy_region.dc_fibers) == 0

    def test_single_pair_is_min_capacity(self):
        assert hose_capacity([("A", "B")], {"A": 4, "B": 9}) == 4

    def test_asymmetric_capacities(self):
        # A (2) sends to both B and C; D sends to B only.
        pairs = [("A", "B"), ("A", "C"), ("D", "B")]
        caps = {"A": 2, "B": 5, "C": 5, "D": 7}
        # D->B is capped by B's ingress (5); A routes its 2 to C: total 7.
        assert hose_capacity(pairs, caps) == 7

    def test_ingress_bottleneck(self):
        pairs = [("A", "C"), ("B", "C")]
        caps = {"A": 8, "B": 8, "C": 5}
        assert hose_capacity(pairs, caps) == 5

    @given(
        caps=st.lists(st.integers(min_value=1, max_value=20), min_size=2, max_size=6)
    )
    @settings(max_examples=50, deadline=None)
    def test_never_exceeds_naive(self, caps):
        dcs = {f"D{i}": c for i, c in enumerate(caps)}
        names = sorted(dcs)
        pairs = [(a, b) for i, a in enumerate(names) for b in names[i + 1 :]]
        assert hose_capacity(pairs, dcs) <= naive_sum_capacity(pairs, dcs)

    @given(
        caps=st.lists(st.integers(min_value=1, max_value=20), min_size=2, max_size=6)
    )
    @settings(max_examples=50, deadline=None)
    def test_bounded_by_side_sums(self, caps):
        dcs = {f"D{i}": c for i, c in enumerate(caps)}
        names = sorted(dcs)
        pairs = [(a, b) for i, a in enumerate(names) for b in names[i + 1 :]]
        value = hose_capacity(pairs, dcs)
        egress = sum(dcs[a] for a in {a for a, _ in pairs})
        ingress = sum(dcs[b] for b in {b for _, b in pairs})
        assert value <= min(egress, ingress)


class TestIncrementalParity:
    """ISSUE 6: repaired residual networks must equal from-scratch solves.

    :func:`hose_capacity` transparently repairs cache misses from
    neighbouring solved instances; ``_hose_max_flow`` is the always-cold
    reference solver. Equality on randomized mutation sequences is the
    interchangeability contract the cache relies on.
    """

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_scenarios=st.integers(min_value=2, max_value=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_incremental_equals_cold(self, seed, n_scenarios):
        rng = random.Random(seed)
        names = list("ABCDEFGH")
        caps = {n: rng.randint(1, 12) for n in names}
        all_pairs = [(a, b) for a in names for b in names if a != b]
        base = rng.sample(all_pairs, rng.randint(2, 20))

        clear_hose_cache()
        for _ in range(n_scenarios):
            # Failure-scenario-shaped mutation: drop/add a few pairs.
            pairs = set(base)
            for _ in range(rng.randint(0, 4)):
                if pairs and rng.random() < 0.5:
                    pairs.discard(rng.choice(sorted(pairs)))
                else:
                    pairs.add(rng.choice(all_pairs))
            ordered = sorted(pairs)
            assert hose_capacity(ordered, caps) == _hose_max_flow(
                ordered, caps
            )
        stats = hose_cache_stats()
        assert stats.cold_solves + stats.incremental_solves == stats.misses

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_changed_capacities_never_reuse_stale_caps(self, seed):
        """A repair source must agree on every shared DC's capacity, so
        re-solving the same pair sets under different caps stays exact."""
        rng = random.Random(seed)
        names = list("ABCDE")
        all_pairs = [(a, b) for a in names for b in names if a != b]
        base = rng.sample(all_pairs, rng.randint(2, 10))

        clear_hose_cache()
        for _ in range(4):
            caps = {n: rng.randint(1, 10) for n in names}
            pairs = sorted(rng.sample(base, rng.randint(1, len(base))))
            assert hose_capacity(pairs, caps) == _hose_max_flow(pairs, caps)

    def test_mutation_sequence_uses_incremental_solves(self):
        """A chain of near-identical instances must mostly repair."""
        names = list("ABCDEF")
        caps = {n: 8 for n in names}
        base = [(a, b) for a in names for b in names if a != b]

        clear_hose_cache()
        hose_capacity(base, caps)
        for drop in base:
            pairs = [p for p in base if p != drop]
            assert hose_capacity(pairs, caps) == _hose_max_flow(pairs, caps)
        stats = hose_cache_stats()
        assert stats.cold_solves == 1  # only the base instance
        assert stats.incremental_solves == len(base)
        assert stats.incremental_rate > 0.9

    def test_state_maxsize_zero_disables_incremental(self):
        """``state_maxsize=0`` is the parity hook: every miss goes cold."""
        names = list("ABCD")
        caps = {n: 5 for n in names}
        base = [(a, b) for a in names for b in names if a != b]

        configure_hose_cache(state_maxsize=0)
        try:
            hose_capacity(base, caps)
            for drop in base[:4]:
                hose_capacity([p for p in base if p != drop], caps)
            stats = hose_cache_stats()
            assert stats.incremental_solves == 0
            assert stats.cold_solves == stats.misses == 5
            assert stats.states == 0
        finally:
            clear_hose_cache()  # restore the env/default bounds


class TestCacheConfiguration:
    def test_stats_expose_solve_split_and_bounds(self):
        clear_hose_cache()
        stats = hose_cache_stats()
        assert stats.cold_solves == stats.incremental_solves == 0
        assert stats.maxsize > 0 and stats.state_maxsize > 0
        assert stats.incremental_rate == 0.0

    def test_configure_overrides_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_HOSE_CACHE_MAXSIZE", "17")
        monkeypatch.setenv("REPRO_HOSE_STATE_MAXSIZE", "3")
        clear_hose_cache()  # fresh cache reads the env fallbacks
        stats = hose_cache_stats()
        assert (stats.maxsize, stats.state_maxsize) == (17, 3)
        # Explicit configuration wins over the environment.
        configure_hose_cache(maxsize=99, state_maxsize=7)
        stats = hose_cache_stats()
        assert (stats.maxsize, stats.state_maxsize) == (99, 7)
        monkeypatch.delenv("REPRO_HOSE_CACHE_MAXSIZE")
        monkeypatch.delenv("REPRO_HOSE_STATE_MAXSIZE")
        clear_hose_cache()
        stats = hose_cache_stats()
        assert stats.maxsize > 99 and stats.state_maxsize > 7

    def test_state_store_is_bounded(self):
        configure_hose_cache(state_maxsize=4)
        try:
            caps = {n: 3 for n in "ABCDE"}
            names = sorted(caps)
            for i, a in enumerate(names):
                for b in names[i + 1 :]:
                    hose_capacity([(a, b)], caps)
            stats = hose_cache_stats()
            assert stats.states <= 4
            assert stats.misses == 10  # the value memo is unaffected
        finally:
            clear_hose_cache()


class TestSolverAgainstNetworkx:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_pairs=st.integers(min_value=0, max_value=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_networkx_maxflow(self, seed, n_pairs):
        """The specialized augmenting-path solver agrees with a general
        max-flow on random bipartite hose instances."""
        import math
        import random

        import networkx as nx

        rng = random.Random(seed)
        names = list("ABCDEF")
        caps = {n: rng.randint(1, 10) for n in names}
        all_pairs = [(a, b) for a in names for b in names if a != b]
        pairs = rng.sample(all_pairs, min(n_pairs, len(all_pairs)))

        if pairs:
            g = nx.DiGraph()
            for a, b in pairs:
                g.add_edge("S", ("L", a), capacity=caps[a])
                g.add_edge(("R", b), "T", capacity=caps[b])
                g.add_edge(("L", a), ("R", b), capacity=math.inf)
            expected = int(nx.maximum_flow(g, "S", "T")[0])
        else:
            expected = 0
        assert hose_capacity(pairs, caps) == expected
