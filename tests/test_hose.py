"""Hose-model max-flow capacity (§4.1, [29])."""

from hypothesis import given, settings, strategies as st

from repro.core.hose import (
    hose_capacity,
    naive_sum_capacity,
    oriented_pairs_through_edge,
)


class TestOrientedPairs:
    def test_trunk_carries_cross_pairs(self, toy_map):
        paths = {}
        for a, b in toy_map.dc_pairs():
            _, p = toy_map.shortest_path(a, b)
            paths[(a, b)] = tuple(p)
        oriented = oriented_pairs_through_edge(("H1", "H2"), paths)
        # Exactly the four cross pairs, oriented left-to-right.
        assert sorted(oriented) == [
            ("DC1", "DC3"),
            ("DC1", "DC4"),
            ("DC2", "DC3"),
            ("DC2", "DC4"),
        ]

    def test_spoke_carries_three_pairs(self, toy_map):
        paths = {}
        for a, b in toy_map.dc_pairs():
            _, p = toy_map.shortest_path(a, b)
            paths[(a, b)] = tuple(p)
        oriented = oriented_pairs_through_edge(("DC1", "H1"), paths)
        assert sorted(oriented) == [
            ("DC1", "DC2"),
            ("DC1", "DC3"),
            ("DC1", "DC4"),
        ]

    def test_orientation_flips_with_direction(self):
        paths = {("A", "B"): ("B", "X", "A")}  # stored reversed
        oriented = oriented_pairs_through_edge(("A", "X"), paths)
        # The pair key's path runs B->A, crossing X->A, i.e. from B's side.
        assert oriented == [("B", "A")]


class TestHoseCapacity:
    def test_toy_trunk_is_twenty(self, toy_region):
        # §3.4: "L5 carries 20 fiber-pairs, such that the network is
        # non-blocking" — not the naive 4 x 10 = 40.
        pairs = [("DC1", "DC3"), ("DC1", "DC4"), ("DC2", "DC3"), ("DC2", "DC4")]
        assert hose_capacity(pairs, toy_region.dc_fibers) == 20
        assert naive_sum_capacity(pairs, toy_region.dc_fibers) == 40

    def test_spoke_is_dc_capacity(self, toy_region):
        pairs = [("DC1", "DC2"), ("DC1", "DC3"), ("DC1", "DC4")]
        # DC1's egress caps everything at 10 despite 3 x 10 naive.
        assert hose_capacity(pairs, toy_region.dc_fibers) == 10

    def test_empty_pairs(self, toy_region):
        assert hose_capacity([], toy_region.dc_fibers) == 0

    def test_single_pair_is_min_capacity(self):
        assert hose_capacity([("A", "B")], {"A": 4, "B": 9}) == 4

    def test_asymmetric_capacities(self):
        # A (2) sends to both B and C; D sends to B only.
        pairs = [("A", "B"), ("A", "C"), ("D", "B")]
        caps = {"A": 2, "B": 5, "C": 5, "D": 7}
        # D->B is capped by B's ingress (5); A routes its 2 to C: total 7.
        assert hose_capacity(pairs, caps) == 7

    def test_ingress_bottleneck(self):
        pairs = [("A", "C"), ("B", "C")]
        caps = {"A": 8, "B": 8, "C": 5}
        assert hose_capacity(pairs, caps) == 5

    @given(
        caps=st.lists(st.integers(min_value=1, max_value=20), min_size=2, max_size=6)
    )
    @settings(max_examples=50, deadline=None)
    def test_never_exceeds_naive(self, caps):
        dcs = {f"D{i}": c for i, c in enumerate(caps)}
        names = sorted(dcs)
        pairs = [(a, b) for i, a in enumerate(names) for b in names[i + 1 :]]
        assert hose_capacity(pairs, dcs) <= naive_sum_capacity(pairs, dcs)

    @given(
        caps=st.lists(st.integers(min_value=1, max_value=20), min_size=2, max_size=6)
    )
    @settings(max_examples=50, deadline=None)
    def test_bounded_by_side_sums(self, caps):
        dcs = {f"D{i}": c for i, c in enumerate(caps)}
        names = sorted(dcs)
        pairs = [(a, b) for i, a in enumerate(names) for b in names[i + 1 :]]
        value = hose_capacity(pairs, dcs)
        egress = sum(dcs[a] for a in {a for a, _ in pairs})
        ingress = sum(dcs[b] for b in {b for _, b in pairs})
        assert value <= min(egress, ingress)


class TestSolverAgainstNetworkx:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_pairs=st.integers(min_value=0, max_value=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_networkx_maxflow(self, seed, n_pairs):
        """The specialized augmenting-path solver agrees with a general
        max-flow on random bipartite hose instances."""
        import math
        import random

        import networkx as nx

        rng = random.Random(seed)
        names = list("ABCDEF")
        caps = {n: rng.randint(1, 10) for n in names}
        all_pairs = [(a, b) for a in names for b in names if a != b]
        pairs = rng.sample(all_pairs, min(n_pairs, len(all_pairs)))

        if pairs:
            g = nx.DiGraph()
            for a, b in pairs:
                g.add_edge("S", ("L", a), capacity=caps[a])
                g.add_edge(("R", b), "T", capacity=caps[b])
                g.add_edge(("L", a), ("R", b), capacity=math.inf)
            expected = int(nx.maximum_flow(g, "S", "T")[0])
        else:
            expected = 0
        assert hose_capacity(pairs, caps) == expected
