"""OSNR -> BER translation for DP-16QAM (§6.2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.optics.ber import (
    ber_16qam,
    post_fec_ber,
    prefec_ber_from_osnr_db,
    required_osnr_db,
    snr_from_osnr_db,
)
from repro.units import FEC_BER_THRESHOLD, POST_FEC_BER


class TestSnr:
    def test_dp_halves_snr(self):
        dp = snr_from_osnr_db(20.0, 60.0, polarizations=2)
        sp = snr_from_osnr_db(20.0, 60.0, polarizations=1)
        assert sp == pytest.approx(2 * dp)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            snr_from_osnr_db(20.0, 0.0)
        with pytest.raises(ValueError):
            snr_from_osnr_db(20.0, 60.0, polarizations=3)


class TestBer16Qam:
    def test_monotone_decreasing_in_snr(self):
        bers = [ber_16qam(snr) for snr in (1, 10, 100, 1000)]
        assert all(a > b for a, b in zip(bers, bers[1:]))

    def test_zero_snr_is_worst_case(self):
        assert ber_16qam(0.0) == pytest.approx(0.375)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ber_16qam(-0.1)

    @given(osnr=st.floats(min_value=5.0, max_value=40.0))
    @settings(max_examples=50, deadline=None)
    def test_ber_in_valid_range(self, osnr):
        ber = prefec_ber_from_osnr_db(osnr)
        assert 0.0 <= ber <= 0.375


class TestFec:
    def test_below_threshold_is_error_free(self):
        assert post_fec_ber(1e-3) == POST_FEC_BER
        assert post_fec_ber(FEC_BER_THRESHOLD) == POST_FEC_BER

    def test_above_threshold_passes_through(self):
        assert post_fec_ber(0.05) == 0.05

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            post_fec_ber(0.6)
        with pytest.raises(ValueError):
            post_fec_ber(-0.1)


class TestRequiredOsnr:
    def test_round_trip_with_ber(self):
        osnr = required_osnr_db(FEC_BER_THRESHOLD)
        assert prefec_ber_from_osnr_db(osnr) == pytest.approx(
            FEC_BER_THRESHOLD, rel=1e-6
        )

    def test_reasonable_for_400zr_class(self):
        # 400ZR-class DP-16QAM needs roughly ~20-26 dB OSNR at the SD-FEC
        # threshold; sanity-check the model lands in that regime.
        osnr = required_osnr_db(FEC_BER_THRESHOLD, baud_gbaud=59.84)
        assert 12.0 < osnr < 26.0

    def test_tighter_target_needs_more_osnr(self):
        assert required_osnr_db(1e-4) > required_osnr_db(1e-2)

    def test_rejects_out_of_range_target(self):
        with pytest.raises(ValueError):
            required_osnr_db(0.4)
        with pytest.raises(ValueError):
            required_osnr_db(0.0)
