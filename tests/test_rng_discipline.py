"""RNG discipline in the simulation stack (reprolint R001 + runtime).

Every sampler must thread an explicit ``random.Random`` instance; none
may read or reseed the process-global RNG. The audit is enforced twice:
statically (reprolint's R001 over all of ``repro/simulation``) and
dynamically (exercising every sampler and asserting the global RNG state
is untouched).
"""

import random
from pathlib import Path

import pytest

from repro.lint import lint_paths

SIMULATION_DIR = (
    Path(__file__).resolve().parent.parent / "src" / "repro" / "simulation"
)


class TestStaticAudit:
    def test_simulation_package_is_r001_clean(self):
        findings = [
            f
            for f in lint_paths([str(SIMULATION_DIR)])
            if f.rule == "R001"
        ]
        assert findings == [], [str(f) for f in findings]

    def test_audit_covers_every_simulation_module(self):
        # The audit means nothing if the package moved out from under it.
        modules = {p.name for p in SIMULATION_DIR.glob("*.py")}
        assert {
            "traffic.py",
            "trafficgen.py",
            "workloads.py",
            "scenarios.py",
            "flowsim.py",
        } <= modules


class TestRuntimeAudit:
    @pytest.fixture(autouse=True)
    def pinned_global_state(self):
        # Pin a recognizable global state; samplers must neither consume
        # nor reseed it.
        # This test *audits* RNG discipline: poking the global RNG on
        # purpose is its job.
        random.seed(0xDEADBEEF)  # repro: noqa-R001
        self.before = random.getstate()  # repro: noqa-R001
        yield
        random.setstate(self.before)  # repro: noqa-R001

    def _assert_untouched(self):
        assert random.getstate() == self.before  # repro: noqa-R001

    def test_workload_sampling_leaves_global_rng_alone(self):
        from repro.simulation.workloads import WORKLOADS

        rng = random.Random(1)
        for dist in WORKLOADS.values():
            for _ in range(50):
                dist.sample(rng)
        self._assert_untouched()

    def test_traffic_evolution_leaves_global_rng_alone(self):
        from repro.simulation.traffic import (
            heavy_tailed_matrix,
            perturb_matrix,
            sample_ensemble,
        )

        rng = random.Random(2)
        tm = heavy_tailed_matrix(["A", "B", "C", "D"], rng)
        perturb_matrix(tm, rng, max_change=0.5)
        perturb_matrix(tm, rng, max_change=None)
        sample_ensemble(["A", "B", "C"], rng, count=3)
        self._assert_untouched()

    def test_flow_generator_leaves_global_rng_alone(self):
        from repro.simulation.traffic import heavy_tailed_matrix
        from repro.simulation.trafficgen import FlowGenerator

        tm = heavy_tailed_matrix(["A", "B", "C"], random.Random(3))
        g = FlowGenerator(sizes="web1", gaps="bursty", locality=tm, seed=1)
        g.flows(duration_s=1.0, offered_bps=1e9)
        self._assert_untouched()

    def test_scenario_comparison_leaves_global_rng_alone(self):
        from dataclasses import replace

        from repro.simulation.scenarios import ScenarioConfig, run_comparison

        cfg = ScenarioConfig(n_dcs=4, duration_s=3.0, seed=5)
        run_comparison(cfg)
        run_comparison(replace(cfg, traffic_backend="flowgen"))
        self._assert_untouched()

    def test_global_seed_cannot_influence_streams(self):
        # The converse check: reseeding the global RNG between two runs
        # changes nothing about the generated stream.
        from repro.simulation.traffic import heavy_tailed_matrix
        from repro.simulation.trafficgen import (
            FlowGenerator,
            flow_stream_digest,
        )

        def digest():
            tm = heavy_tailed_matrix(["A", "B", "C"], random.Random(4))
            g = FlowGenerator(sizes="cache", locality=tm, seed=6)
            return flow_stream_digest(
                g.flows(duration_s=1.0, offered_bps=1e9)
            )

        random.seed(1)  # repro: noqa-R001
        a = digest()
        random.seed(2)  # repro: noqa-R001
        b = digest()
        assert a == b
