"""The fluid max-min flow simulator."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import SimulationError
from repro.simulation.flowsim import FluidSimulator, compute_rates
from repro.simulation.metrics import percentile

GBPS = 1e9


class TestComputeRates:
    def test_single_flow_gets_bottleneck(self):
        rates = compute_rates(
            {("A", "B"): 1}, {"A": 10 * GBPS, "B": 4 * GBPS}, {"A": 10 * GBPS, "B": 4 * GBPS}
        )
        assert rates[("A", "B")] == pytest.approx(4 * GBPS)

    def test_flows_share_fairly(self):
        rates = compute_rates(
            {("A", "B"): 4}, {"A": 8 * GBPS, "B": 8 * GBPS}, {"A": 8 * GBPS, "B": 8 * GBPS}
        )
        assert rates[("A", "B")] == pytest.approx(2 * GBPS)

    def test_pair_cap_binds(self):
        rates = compute_rates(
            {("A", "B"): 2},
            {"A": 8 * GBPS, "B": 8 * GBPS},
            {"A": 8 * GBPS, "B": 8 * GBPS},
            pair_caps_bps={("A", "B"): 1 * GBPS},
        )
        assert rates[("A", "B")] == pytest.approx(0.5 * GBPS)

    def test_flow_cap_binds(self):
        rates = compute_rates(
            {("A", "B"): 2},
            {"A": 8 * GBPS, "B": 8 * GBPS},
            {"A": 8 * GBPS, "B": 8 * GBPS},
            flow_cap_bps=0.25 * GBPS,
        )
        assert rates[("A", "B")] == pytest.approx(0.25 * GBPS)

    def test_max_min_redistributes(self):
        # A-B capped at 1G; A-C takes the freed egress.
        rates = compute_rates(
            {("A", "B"): 1, ("A", "C"): 1},
            {"A": 4 * GBPS, "B": 8 * GBPS, "C": 8 * GBPS},
            {"A": 4 * GBPS, "B": 8 * GBPS, "C": 8 * GBPS},
            pair_caps_bps={("A", "B"): 1 * GBPS},
        )
        assert rates[("A", "B")] == pytest.approx(1 * GBPS)
        assert rates[("A", "C")] == pytest.approx(3 * GBPS)

    def test_no_constraints_means_unbounded(self):
        rates = compute_rates({("A", "B"): 1}, {}, {})
        assert rates[("A", "B")] == math.inf

    def test_empty_input(self):
        assert compute_rates({}, {"A": GBPS}, {"A": GBPS}) == {}

    @given(
        counts=st.lists(st.integers(min_value=0, max_value=9), min_size=3, max_size=3),
        caps=st.lists(
            st.floats(min_value=0.1, max_value=100.0), min_size=3, max_size=3
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_rates_respect_all_constraints(self, counts, caps):
        dcs = ["A", "B", "C"]
        pairs = [("A", "B"), ("A", "C"), ("B", "C")]
        flow_counts = dict(zip(pairs, counts))
        dc_caps = dict(zip(dcs, caps))
        rates = compute_rates(flow_counts, dc_caps, dc_caps)
        for dc in dcs:
            load = sum(
                rates.get(p, 0) * n
                for p, n in flow_counts.items()
                if dc in p and n > 0
            )
            assert load <= dc_caps[dc] * (1 + 1e-9) + 1e-9


class TestSimulatorBasics:
    def test_single_flow_fct(self):
        sim = FluidSimulator(egress_bps={"A": GBPS, "B": GBPS})
        records = sim.run([(0.0, "A", "B", int(GBPS))])  # 1 Gbit at 1 Gbps
        assert len(records) == 1
        assert records[0].fct == pytest.approx(1.0)

    def test_two_flows_share_then_speed_up(self):
        # Two identical flows: each at 0.5 Gbps until both finish at t=2.
        sim = FluidSimulator(egress_bps={"A": GBPS, "B": GBPS})
        records = sim.run(
            [(0.0, "A", "B", int(GBPS)), (0.0, "A", "B", int(GBPS))]
        )
        assert all(r.t_finish == pytest.approx(2.0) for r in records)

    def test_staggered_flows(self):
        # Flow 1 runs alone [0, 0.5] at 1G (0.5 Gb done), shares [0.5, 1.5]
        # at 0.5G (0.5 Gb more) -> finishes at 1.5. Flow 2 then runs alone.
        sim = FluidSimulator(egress_bps={"A": GBPS, "B": GBPS})
        records = sim.run(
            [(0.0, "A", "B", int(GBPS)), (0.5, "A", "B", int(GBPS))]
        )
        by_arrival = sorted(records, key=lambda r: r.t_arrive)
        assert by_arrival[0].t_finish == pytest.approx(1.5)
        assert by_arrival[1].t_finish == pytest.approx(2.0)

    def test_cross_pair_independence(self):
        # Different DC pairs with ample capacity don't interact.
        sim = FluidSimulator(
            egress_bps={"A": GBPS, "B": GBPS, "C": GBPS, "D": GBPS}
        )
        records = sim.run(
            [(0.0, "A", "B", int(GBPS)), (0.0, "C", "D", int(GBPS))]
        )
        assert all(r.t_finish == pytest.approx(1.0) for r in records)

    def test_flow_conservation(self):
        sim = FluidSimulator(egress_bps={"A": GBPS, "B": GBPS, "C": GBPS})
        flows = [(0.1 * i, "A", "B" if i % 2 else "C", 10_000_000) for i in range(20)]
        records = sim.run(flows)
        assert len(records) == 20
        assert all(r.finished for r in records)

    def test_bad_flows_rejected(self):
        sim = FluidSimulator(egress_bps={"A": GBPS, "B": GBPS})
        with pytest.raises(SimulationError):
            sim.run([(0.0, "A", "A", 100)])
        with pytest.raises(SimulationError):
            sim.run([(0.0, "A", "B", 0)])


class TestCapacityEvents:
    def test_dark_window_delays_completion(self):
        # 1 Gbit flow at 1 Gbps, but the pair goes dark during [0.2, 0.4]:
        # finish slips from 1.0 to 1.2.
        sim = FluidSimulator(
            egress_bps={"A": 10 * GBPS, "B": 10 * GBPS},
            pair_caps_bps={("A", "B"): GBPS},
            capacity_events=[
                (0.2, {("A", "B"): 0.0}),
                (0.4, {("A", "B"): GBPS}),
            ],
        )
        records = sim.run([(0.0, "A", "B", int(GBPS))])
        assert records[0].t_finish == pytest.approx(1.2)

    def test_capacity_increase_speeds_up(self):
        sim = FluidSimulator(
            egress_bps={"A": 10 * GBPS, "B": 10 * GBPS},
            pair_caps_bps={("A", "B"): GBPS},
            capacity_events=[(0.5, {("A", "B"): 2 * GBPS})],
        )
        records = sim.run([(0.0, "A", "B", int(2 * GBPS))])
        # 0.5 Gb by t=0.5, remaining 1.5 Gb at 2 Gbps -> 1.25 total.
        assert records[0].t_finish == pytest.approx(1.25)

    def test_flow_stuck_forever_is_unfinished(self):
        sim = FluidSimulator(
            egress_bps={"A": GBPS, "B": GBPS},
            pair_caps_bps={("A", "B"): 0.0},
        )
        records = sim.run([(0.0, "A", "B", 100)])
        assert len(records) == 1
        assert not records[0].finished

    def test_events_require_pair_mode(self):
        sim = FluidSimulator(
            egress_bps={"A": GBPS, "B": GBPS},
            capacity_events=[(0.1, {("A", "B"): GBPS})],
        )
        with pytest.raises(SimulationError):
            sim.run([(0.0, "A", "B", int(GBPS))])

    def test_negative_event_time_rejected(self):
        with pytest.raises(SimulationError):
            FluidSimulator(
                egress_bps={"A": GBPS},
                pair_caps_bps={},
                capacity_events=[(-1.0, {})],
            )


class TestMetrics:
    def test_percentile_interpolation(self):
        assert percentile([1, 2, 3, 4], 50) == pytest.approx(2.5)
        assert percentile([1, 2, 3, 4], 0) == 1
        assert percentile([1, 2, 3, 4], 100) == 4

    def test_percentile_validation(self):
        with pytest.raises(SimulationError):
            percentile([], 50)
        with pytest.raises(SimulationError):
            percentile([1.0], 110)


class TestConservation:
    @given(
        sizes=st.lists(
            st.integers(min_value=1_000, max_value=50_000_000),
            min_size=1,
            max_size=15,
        ),
        cap_gbps=st.floats(min_value=0.5, max_value=10.0),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=30, deadline=None)
    def test_work_conservation(self, sizes, cap_gbps, seed):
        """Every flow finishes, exactly once, and no earlier than its
        size / bottleneck-rate lower bound."""
        import random

        rng = random.Random(seed)
        cap = cap_gbps * GBPS
        flows = []
        t = 0.0
        for size in sizes:
            t += rng.expovariate(50.0)
            flows.append((t, "A", "B", size))
        sim = FluidSimulator(egress_bps={"A": cap, "B": cap})
        records = sim.run(flows)
        assert len(records) == len(sizes)
        assert all(r.finished for r in records)
        for r in records:
            assert r.fct >= r.size_bits / cap - 1e-9
        # Aggregate service never exceeds capacity x busy time.
        total_bits = sum(r.size_bits for r in records)
        makespan = max(r.t_finish for r in records) - min(
            r.t_arrive for r in records
        )
        assert total_bits <= cap * makespan + 1e-3 * cap

    def test_end_time_cuts_off(self):
        sim = FluidSimulator(egress_bps={"A": GBPS, "B": GBPS})
        records = sim.run([(0.0, "A", "B", int(10 * GBPS))], end_time=1.0)
        assert len(records) == 1
        assert not records[0].finished


class TestUnconstrainedFabric:
    def test_no_caps_completes_instantly(self):
        # No configured constraints at all: flows drain at the clamp rate
        # instead of producing NaN work (inf * 0).
        sim = FluidSimulator(egress_bps={})
        records = sim.run([(0.0, "A", "B", int(GBPS))])
        assert records[0].finished
        assert records[0].fct < 1e-6
