"""Flow-level failover transient (OC4 at the application layer)."""

import math

import pytest

from repro.exceptions import SimulationError
from repro.simulation.failover import FailoverConfig, run_failover


class TestFailoverConfig:
    def test_failure_must_be_mid_run(self):
        with pytest.raises(SimulationError):
            FailoverConfig(duration_s=5.0, failure_time_s=6.0)
        with pytest.raises(SimulationError):
            FailoverConfig(failure_time_s=0.0)

    def test_affected_fraction_bounds(self):
        with pytest.raises(SimulationError):
            FailoverConfig(affected_fraction=0.0)


class TestFailoverRun:
    @pytest.fixture(scope="class")
    def result(self):
        return run_failover(FailoverConfig(duration_s=8.0, seed=3))

    def test_all_flows_eventually_finish(self, result):
        # The cut is tolerated: capacity returns after one switch time, so
        # nothing strands.
        assert result.unfinished == 0

    def test_transient_bounded_by_switch_time_scale(self, result):
        # No flow loses more than the dark window plus its queue drain —
        # well under a second at these loads.
        assert 0.0 <= result.max_extra_fct_s < 1.0

    def test_affected_pairs_hurt_more_than_rest(self, result):
        assert result.p99_affected_ratio >= result.p99_ratio - 0.05

    def test_overall_p99_barely_moves(self, result):
        assert result.p99_ratio < 1.5
        assert not math.isnan(result.p99_affected_ratio)

    def test_deterministic(self):
        a = run_failover(FailoverConfig(duration_s=6.0, seed=9))
        b = run_failover(FailoverConfig(duration_s=6.0, seed=9))
        assert a == b

    def test_longer_dark_time_hurts_more(self):
        fast = run_failover(
            FailoverConfig(duration_s=8.0, switch_time_s=0.02, seed=4)
        )
        slow = run_failover(
            FailoverConfig(duration_s=8.0, switch_time_s=0.5, seed=4)
        )
        assert slow.max_extra_fct_s >= fast.max_extra_fct_s
