"""Algorithm 1: topology & capacity planning, and the enumeration pruning."""

import pytest

from repro.core.failures import Scenario, all_failure_scenarios, scenario_count
from repro.core.topology import (
    compute_scenario_paths,
    enumerate_scenario_paths,
    plan_topology,
    prune_overlong_ducts,
)
from repro.exceptions import InfeasibleRegionError
from repro.region.catalog import make_region
from repro.region.fibermap import (
    FiberMap,
    OperationalConstraints,
    RegionSpec,
)

from tests.conftest import build_toy_map


class TestFailureEnumeration:
    def test_counts(self):
        ducts = [("A", "B"), ("B", "C"), ("C", "D")]
        scenarios = list(all_failure_scenarios(ducts, 2))
        assert len(scenarios) == 1 + 3 + 3
        assert scenarios[0] == Scenario()

    def test_scenario_count_formula(self):
        assert scenario_count(10, 2) == 1 + 10 + 45

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            list(all_failure_scenarios([("A", "B")], -1))


class TestPruneOverlongDucts:
    def test_removes_beyond_tc1(self):
        fmap = FiberMap()
        fmap.add_dc("A", 0, 0)
        fmap.add_dc("B", 10, 0)
        fmap.add_hut("H", 5, 0)
        fmap.add_duct("A", "B", length_km=90.0)  # beyond 80 km reach
        fmap.add_duct("A", "H", length_km=40.0)
        fmap.add_duct("H", "B", length_km=40.0)
        pruned = prune_overlong_ducts(fmap, 80.0)
        assert not pruned.has_duct("A", "B")
        assert pruned.has_duct("A", "H")
        # Original map untouched.
        assert fmap.has_duct("A", "B")


class TestScenarioPaths:
    def test_toy_base_paths(self, toy_region):
        paths = compute_scenario_paths(toy_region.fiber_map, Scenario())
        assert paths[("DC1", "DC2")] == ("DC1", "H1", "DC2")
        assert paths[("DC1", "DC3")] == ("DC1", "H1", "H2", "DC3")
        assert len(paths) == 6

    def test_disconnection_raises(self, toy_region):
        with pytest.raises(InfeasibleRegionError) as exc:
            compute_scenario_paths(
                toy_region.fiber_map, Scenario({("H1", "H2")})
            )
        assert exc.value.scenario == Scenario({("H1", "H2")})

    def test_sla_violation_raises(self):
        fmap = build_toy_map(spoke_km=50.0, trunk_km=40.0)
        # Cross pairs: 50 + 40 + 50 = 140 km > 120 km SLA.
        with pytest.raises(InfeasibleRegionError, match="SLA"):
            compute_scenario_paths(fmap, Scenario(), sla_fiber_km=120.0)


class TestPrunedEnumeration:
    def test_matches_brute_force_on_small_region(self):
        instance = make_region(map_index=0, n_dcs=4, dc_fibers=4)
        region = instance.spec
        fmap = prune_overlong_ducts(
            region.fiber_map, region.constraints.max_span_km
        )
        pruned, _ = enumerate_scenario_paths(fmap, 1, prune=True)
        brute, _ = enumerate_scenario_paths(fmap, 1, prune=False)
        # The pruned enumeration is a subset...
        assert set(pruned) <= set(brute)
        # ...whose path sets cover every brute-force outcome: any omitted
        # scenario has the same shortest paths as the no-failure scenario
        # it collapses to.
        distinct_brute = {
            tuple(sorted(paths.items())) for paths in brute.values()
        }
        distinct_pruned = {
            tuple(sorted(paths.items())) for paths in pruned.values()
        }
        assert distinct_brute == distinct_pruned

    def test_capacities_match_brute_force(self):
        instance = make_region(map_index=1, n_dcs=4, dc_fibers=4)
        region = instance.spec
        spec_pruned = plan_topology(region, prune_enumeration=True)
        spec_brute = plan_topology(region, prune_enumeration=False)
        assert dict(spec_pruned.edge_capacity) == dict(spec_brute.edge_capacity)


class TestPlanTopologyToy:
    def test_toy_capacities_match_paper(self, toy_region):
        # §3.4: L1-L4 carry 10 fiber-pairs each, L5 carries 20; F_E = 60.
        plan = plan_topology(toy_region)
        caps = dict(plan.edge_capacity)
        assert caps[("DC1", "H1")] == 10
        assert caps[("DC2", "H1")] == 10
        assert caps[("DC3", "H2")] == 10
        assert caps[("DC4", "H2")] == 10
        assert caps[("H1", "H2")] == 20
        assert plan.total_fiber_pairs() == 60

    def test_unused_huts_detected(self):
        fmap = build_toy_map()
        fmap.add_hut("H9", 100.0, 100.0)
        fmap.add_duct("H9", "H2", length_km=5.0)
        region = RegionSpec(
            fiber_map=fmap,
            dc_fibers={f"DC{i}": 10 for i in range(1, 5)},
            constraints=OperationalConstraints(failure_tolerance=0),
        )
        plan = plan_topology(region)
        assert "H9" not in plan.used_nodes()
        assert ("H2", "H9") not in plan.used_ducts

    def test_failure_tolerance_raises_capacity(self, small_region_instance):
        region = small_region_instance.spec
        tol0 = RegionSpec(
            fiber_map=region.fiber_map,
            dc_fibers=region.dc_fibers,
            wavelengths_per_fiber=region.wavelengths_per_fiber,
            constraints=OperationalConstraints(failure_tolerance=0),
        )
        plan0 = plan_topology(tol0)
        plan2 = plan_topology(region)
        assert plan2.total_fiber_pairs() >= plan0.total_fiber_pairs()
        # Capacity never shrinks on any individual duct either.
        for duct, cap in plan0.edge_capacity.items():
            assert plan2.edge_capacity.get(duct, 0) >= cap

    def test_scenarios_include_no_failure(self, toy_region):
        plan = plan_topology(toy_region)
        assert Scenario() in plan.scenario_paths
        assert plan.scenarios[0] == Scenario()


class TestIrisUsableDuctPrune:
    def test_duct_beyond_iris_run_budget_is_avoided(self):
        """A 75 km duct passes raw TC1 (80 km) but cannot close an Iris
        run once its two endpoint OSS traversals are charged (21.75 dB >
        20 dB), so planning must route around it."""
        from repro.core.planner import plan_region
        from repro.units import IRIS_MAX_DUCT_KM

        assert IRIS_MAX_DUCT_KM == pytest.approx(68.0)

        fmap = FiberMap()
        fmap.add_dc("A", 0, 0)
        fmap.add_dc("B", 75, 0)
        fmap.add_hut("M", 37, 5)
        fmap.add_duct("A", "B", length_km=75.0)  # tempting but unusable
        fmap.add_duct("A", "M", length_km=40.0)
        fmap.add_duct("M", "B", length_km=40.0)
        region = RegionSpec(
            fiber_map=fmap,
            dc_fibers={"A": 4, "B": 4},
            constraints=OperationalConstraints(failure_tolerance=0),
        )
        plan = plan_region(region)
        assert ("A", "B") not in plan.topology.used_ducts
        assert plan.topology.base_paths[("A", "B")] == ("A", "M", "B")
        assert plan.validate() == []
