"""Per-figure analyses: latency inflation, flexibility, port cost, toy, sweep."""

import pytest

from repro.analysis.designspace import SweepPoint, default_mini_sweep, run_sweep
from repro.analysis.latency import cdf, fraction_at_least, latency_inflation_ratios
from repro.analysis.flexibility import flexibility_gains
from repro.analysis.portcost import port_cost_table
from repro.analysis.toy import toy_example_summary
from repro.exceptions import ReproError
from repro.region.catalog import region_ensemble


@pytest.fixture(scope="module")
def ensemble():
    # A reduced ensemble (the figure benches run the full 22/33 regions).
    return region_ensemble(count=6, n_dcs_range=(5, 7))


class TestLatencyInflation:
    def test_hub_paths_mostly_longer(self, ensemble):
        ratios = latency_inflation_ratios(ensemble)
        # §2.1: "latency reduces for at least 60% of DC-DC paths" via
        # direct connectivity, i.e. most hub paths are inflated.
        assert fraction_at_least(ratios, 1.0) >= 0.6

    def test_some_paths_inflate_2x(self, ensemble):
        ratios = latency_inflation_ratios(ensemble)
        assert fraction_at_least(ratios, 2.0) > 0.0

    def test_cdf_properties(self):
        points = cdf([3.0, 1.0, 2.0])
        assert points == [(1.0, pytest.approx(1 / 3)), (2.0, pytest.approx(2 / 3)), (3.0, 1.0)]

    def test_empty_inputs_rejected(self):
        with pytest.raises(ReproError):
            cdf([])
        with pytest.raises(ReproError):
            fraction_at_least([], 1.0)
        with pytest.raises(ReproError):
            latency_inflation_ratios([])


class TestFlexibility:
    def test_distributed_always_more_flexible(self, ensemble):
        gains = flexibility_gains(ensemble, spacing_km=4.0)
        assert len(gains) == len(ensemble)
        for _, gain in gains:
            assert gain >= 1.0

    def test_gains_in_paper_band(self, ensemble):
        # Fig 6: 2-5x across regions (we tolerate a slightly wider band on
        # synthetic maps).
        gains = [g for _, g in flexibility_gains(ensemble, spacing_km=4.0)]
        median = sorted(gains)[len(gains) // 2]
        assert 1.5 <= median <= 8.0

    def test_empty_ensemble_rejected(self):
        with pytest.raises(ReproError):
            flexibility_gains([])


class TestPortCostTable:
    def test_rows_normalized_to_centralized(self):
        rows = port_cost_table(n_dcs=16)
        assert rows[0].groups == 1
        assert rows[0].electrical == pytest.approx(1.0)

    def test_paper_narrative_holds(self):
        rows = {r.groups: r for r in port_cost_table(n_dcs=16)}
        # Full mesh roughly 7x (exactly (N+1)/2).
        assert rows[16].electrical == pytest.approx(8.5)
        # Semi-distributed with SR still beats no one: > centralized.
        for g in (2, 4, 8, 16):
            assert rows[g].electrical_sr > rows[1].electrical
        # Optical stays within ~1.5x of centralized across the spectrum.
        assert all(r.optical < 1.5 for r in rows.values())


class TestToyExample:
    def test_section_3_4_numbers(self):
        summary = toy_example_summary()
        assert summary.eps_fiber_pairs == 60
        assert summary.eps_transceivers == 4800
        assert summary.iris_transceivers == 1600
        assert summary.iris_fiber_pairs == 76  # paper: 78 (see DESIGN.md)
        # "the electrical design costs 2.7x more than the optical one"
        assert summary.cost_ratio == pytest.approx(2.7, abs=0.45)
        assert summary.simplified_cost_ratio == pytest.approx(2.74, abs=0.03)


class TestSweep:
    def test_mini_sweep_grid(self):
        points = default_mini_sweep()
        assert len(points) == 32
        assert len({(p.map_index, p.n_dcs, p.dc_fibers) for p in points}) == 16

    def test_single_point_headlines(self):
        records = run_sweep([SweepPoint(0, 5, 8, 40)])
        (r,) = records
        # Fig 12(a): EPS much more expensive; hybrid ~ Iris.
        assert r.eps_over_iris > 3.0
        assert r.eps_over_hybrid == pytest.approx(r.eps_over_iris, rel=0.2)
        # In-network-only contrast is sharper.
        assert r.eps_over_iris_innetwork > r.eps_over_iris
        # Fig 12(c): EPS port ratio large, Iris small.
        assert r.eps_port_ratio > 5 * r.iris_port_ratio
        # Fig 12(d): unprotected EPS still >2x Iris with 2-cut tolerance.
        assert r.eps_tol0_over_iris > 2.0
        # Fig 12(b): advantage survives SR-priced transceivers.
        assert r.eps_over_iris_sr > 1.5
