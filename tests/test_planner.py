"""End-to-end Iris planning: integration tests and plan invariants."""

import pytest

from repro.core.failures import Scenario
from repro.core.planner import IrisPlanner, plan_region
from repro.core.residual import residual_fiber_pairs, residual_pair_count
from repro.core.topology import plan_topology


class TestToyPlan:
    def test_toy_matches_section_3_4(self, toy_region):
        """The §3.4 worked example, end to end.

        F_E = 60 base fiber-pairs; residual = one pair per DC pair along its
        shortest path (L1-L4: +3 each, trunk: +4); T_O = 1600 transceivers.
        """
        plan = plan_region(toy_region)
        assert plan.topology.total_fiber_pairs() == 60
        residual = dict(plan.residual)
        assert residual[("DC1", "H1")] == 3
        assert residual[("DC2", "H1")] == 3
        assert residual[("DC3", "H2")] == 3
        assert residual[("DC4", "H2")] == 3
        assert residual[("H1", "H2")] == 4
        assert plan.residual_fiber_pairs() == 16
        inv = plan.inventory()
        assert inv.dc_transceivers == 1600
        # No amplification needed at these distances; no cut-throughs.
        assert plan.cut_throughs == ()
        assert plan.amplifiers.assignments == {}

    def test_toy_oss_ports(self, toy_region):
        # §3.4 accounting: 4 OSS ports per (fiber-pair, duct).
        plan = plan_region(toy_region)
        inv = plan.inventory()
        assert inv.oss_ports == 4 * (60 + 16)

    def test_validate_clean(self, toy_region):
        plan = plan_region(toy_region)
        assert plan.validate() == []


class TestSyntheticPlan:
    def test_plan_is_constraint_clean(self, small_plan):
        assert small_plan.validate() == []

    def test_every_scenario_pair_has_a_path(self, small_plan):
        region = small_plan.region
        pairs = set(region.fiber_map.dc_pairs())
        for scenario in small_plan.topology.scenarios:
            covered = {
                pair
                for (s, pair) in small_plan.effective_paths
                if s == scenario
            }
            assert covered == pairs

    def test_paths_within_sla_everywhere(self, small_plan):
        sla = small_plan.region.constraints.sla_fiber_km
        for path in small_plan.effective_paths.values():
            assert path.total_km <= sla + 1e-6

    def test_duct_fiber_pairs_consistent(self, small_plan):
        total = sum(small_plan.duct_fiber_pairs().values())
        assert total == small_plan.total_fiber_pair_spans()

    def test_residual_covers_all_pairs(self, small_plan):
        region = small_plan.region
        assert (
            small_plan.residual_fiber_pairs()
            >= residual_pair_count(region)
        )

    def test_effective_paths_follow_shortest_paths(self, small_plan):
        base = small_plan.topology.base_paths
        for pair, path in base.items():
            eff = small_plan.effective_paths[(Scenario(), pair)]
            # Effective nodes are a subsequence of the physical path and
            # total length is preserved (bypasses do not reroute).
            assert eff.total_km == pytest.approx(
                small_plan.region.fiber_map.path_length(path)
            )
            it = iter(path)
            assert all(node in it for node in eff.nodes)


class TestResidual:
    def test_residual_follows_base_paths(self, toy_region):
        topology = plan_topology(toy_region)
        residual = residual_fiber_pairs(toy_region, topology)
        # Total residual spans = sum of base path hop counts.
        expected = sum(
            len(p) - 1 for p in topology.base_paths.values()
        )
        assert sum(residual.values()) == expected

    def test_pair_count_formula(self, toy_region):
        assert residual_pair_count(toy_region) == 6


class TestPlannerOptions:
    def test_validation_can_be_disabled(self, toy_region):
        plan = IrisPlanner(toy_region, validate=False).plan()
        assert plan.validate() == []  # still clean, just not enforced

    def test_plan_from_topology_reuse(self, toy_region):
        planner = IrisPlanner(toy_region)
        topology = planner.plan_topology()
        plan = planner.plan_from_topology(topology)
        assert plan.topology is topology
