"""Region/map statistics."""

import pytest

from repro.exceptions import RegionError
from repro.region.catalog import make_region
from repro.region.fibermap import FiberMap
from repro.region.stats import map_stats, region_summary


class TestMapStats:
    def test_toy_stats(self, toy_map):
        stats = map_stats(toy_map)
        assert stats.dcs == 4
        assert stats.huts == 2
        assert stats.ducts == 5
        assert stats.mean_duct_km == pytest.approx((4 * 10 + 20) / 5)
        # Hub pairs: 20 km / 2 hops; cross pairs: 40 km / 3 hops.
        assert stats.max_pair_distance_km == pytest.approx(40.0)
        assert stats.max_pair_hops == 3
        assert stats.mean_pair_hops == pytest.approx((2 * 2 + 4 * 3) / 6)

    def test_empty_map_rejected(self):
        with pytest.raises(RegionError):
            map_stats(FiberMap())

    def test_synthetic_maps_match_paper_regime(self):
        """Regions span tens of km with short hop counts and metro route
        factors — the regime §2 describes."""
        instance = make_region(map_index=0, n_dcs=5, dc_fibers=8)
        stats = map_stats(instance.spec.fiber_map)
        assert stats.max_pair_distance_km <= 120.0
        assert 1.0 <= stats.mean_route_factor <= 1.6
        assert stats.mean_pair_hops <= 8


class TestRegionSummary:
    def test_summary_fields(self, toy_region):
        summary = region_summary(toy_region)
        assert summary["dcs"] == 4
        assert summary["total_capacity_tbps"] == pytest.approx(640.0)
        assert summary["failure_tolerance"] == 0
        assert summary["sla_fiber_km"] == 120.0
