"""CLI integration: every subcommand runs and prints what it promises."""

import json

from repro.cli import main


class TestRegionCommand:
    def test_describe(self, capsys):
        assert main(["region", "--dcs", "4"]) == 0
        out = capsys.readouterr().out
        assert "4 DCs" in out
        assert "Tbps" in out

    def test_export_and_reload(self, tmp_path, capsys):
        out_file = tmp_path / "region.json"
        assert main(["region", "--dcs", "4", "--out", str(out_file)]) == 0
        data = json.loads(out_file.read_text())
        assert data["format_version"] == 1
        # Reload through --region-file.
        capsys.readouterr()
        assert main(["region", "--region-file", str(out_file)]) == 0
        assert "4 DCs" in capsys.readouterr().out


class TestPlanCommand:
    def test_plan_and_export(self, tmp_path, capsys):
        out_file = tmp_path / "plan.json"
        code = main(
            ["plan", "--dcs", "4", "--tolerance", "1", "--out", str(out_file)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "base fiber-pairs" in out
        assert "constraint violations: 0" in out
        assert json.loads(out_file.read_text())["total_fiber_pair_spans"] > 0

    def test_plan_parallel_smoke(self, capsys):
        """ISSUE smoke target: the --jobs pool path runs on every CI pass."""
        assert main(["plan", "--dcs", "5", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "constraint violations: 0" in out
        assert "backend process" in out

    def test_plan_serial_reports_timings(self, capsys):
        assert main(["plan", "--dcs", "4", "--tolerance", "1"]) == 0
        out = capsys.readouterr().out
        assert "planning time" in out
        assert "backend serial" in out


class TestCostCommand:
    def test_cost_table(self, capsys):
        assert main(["cost", "--dcs", "4", "--tolerance", "1"]) == 0
        out = capsys.readouterr().out
        assert "iris" in out and "eps" in out and "hybrid" in out
        assert "cost ratio" in out


class TestPortModelCommand:
    def test_table(self, capsys):
        assert main(["portmodel", "--dcs", "8"]) == 0
        out = capsys.readouterr().out
        assert "groups" in out
        assert "optical" in out


class TestSweepCommand:
    def test_limited_sweep(self, capsys):
        assert main(["sweep", "--limit", "2"]) == 0
        out = capsys.readouterr().out
        assert "EPS/Iris" in out
        assert "median" in out


class TestSimulateCommand:
    def test_simulation(self, capsys):
        code = main(
            [
                "simulate",
                "--dcs",
                "4",
                "--duration",
                "4",
                "--interval",
                "2",
                "--utilization",
                "0.3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "slowdown" in out


class TestTestbedCommand:
    def test_experiment(self, capsys):
        assert main(["testbed", "--duration", "120", "--period", "60"]) == 0
        out = capsys.readouterr().out
        assert "max pre-FEC BER" in out
        assert "error-free post-FEC: True" in out


class TestAnalyzeCommand:
    def test_analysis_summary(self, capsys):
        assert main(["analyze", "--regions", "3"]) == 0
        out = capsys.readouterr().out
        assert "latency inflation" in out
        assert "siting-area gain" in out


class TestFailoverCommand:
    def test_drill(self, capsys):
        code = main(
            ["failover", "--dcs", "4", "--tolerance", "1", "--map-index", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cutting duct" in out
        assert "audit: clean" in out
        assert "restored shortest paths" in out
