"""CLI integration: every subcommand runs and prints what it promises."""

import json

from repro.cli import main


class TestRegionCommand:
    def test_describe(self, capsys):
        assert main(["region", "--dcs", "4"]) == 0
        out = capsys.readouterr().out
        assert "4 DCs" in out
        assert "Tbps" in out

    def test_export_and_reload(self, tmp_path, capsys):
        out_file = tmp_path / "region.json"
        assert main(["region", "--dcs", "4", "--out", str(out_file)]) == 0
        data = json.loads(out_file.read_text())
        assert data["format_version"] == 1
        # Reload through --region-file.
        capsys.readouterr()
        assert main(["region", "--region-file", str(out_file)]) == 0
        assert "4 DCs" in capsys.readouterr().out


class TestPlanCommand:
    def test_plan_and_export(self, tmp_path, capsys):
        out_file = tmp_path / "plan.json"
        code = main(
            ["plan", "--dcs", "4", "--tolerance", "1", "--out", str(out_file)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "base fiber-pairs" in out
        assert "constraint violations: 0" in out
        assert json.loads(out_file.read_text())["total_fiber_pair_spans"] > 0

    def test_plan_parallel_smoke(self, capsys):
        """ISSUE smoke target: the --jobs pool path runs on every CI pass."""
        assert main(["plan", "--dcs", "5", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "constraint violations: 0" in out
        assert "backend steal" in out

    def test_plan_backend_flag_selects_static_pool(self, capsys):
        args = ["plan", "--dcs", "4", "--jobs", "2", "--backend", "process"]
        assert main(args) == 0
        assert "backend process" in capsys.readouterr().out

    def test_plan_serial_reports_timings(self, capsys):
        assert main(["plan", "--dcs", "4", "--tolerance", "1"]) == 0
        out = capsys.readouterr().out
        assert "planning time" in out
        assert "backend serial" in out


class TestCostCommand:
    def test_cost_table(self, capsys):
        assert main(["cost", "--dcs", "4", "--tolerance", "1"]) == 0
        out = capsys.readouterr().out
        assert "iris" in out and "eps" in out and "hybrid" in out
        assert "cost ratio" in out


class TestPortModelCommand:
    def test_table(self, capsys):
        assert main(["portmodel", "--dcs", "8"]) == 0
        out = capsys.readouterr().out
        assert "groups" in out
        assert "optical" in out


class TestSweepCommand:
    def test_limited_sweep(self, capsys):
        assert main(["sweep", "--limit", "2"]) == 0
        out = capsys.readouterr().out
        assert "EPS/Iris" in out
        assert "median" in out

    def test_resume_without_store_is_a_usage_error(self, capsys):
        assert main(["sweep", "--limit", "1", "--resume", "--no-store"]) == 2
        assert "--resume needs an artifact store" in capsys.readouterr().err


class TestStoreCommands:
    def _args(self, tmp_path):
        return ["--dcs", "4", "--tolerance", "1", "--store", str(tmp_path)]

    def test_plan_cold_warm_stdout_identical(self, tmp_path, capsys):
        assert main(["plan", *self._args(tmp_path)]) == 0
        cold = capsys.readouterr()
        assert main(["plan", *self._args(tmp_path)]) == 0
        warm = capsys.readouterr()

        def strip(out):  # the wall-time line legitimately differs
            return [line for line in out.splitlines()
                    if not line.startswith("planning time:")]

        assert strip(cold.out) == strip(warm.out)
        assert "1 miss(es)" in cold.err and "1 hit(s)" in warm.err

    def test_sweep_cold_warm_stdout_identical(self, tmp_path, capsys):
        args = ["sweep", "--limit", "2", "--store", str(tmp_path)]
        assert main(args) == 0
        cold = capsys.readouterr()
        assert main([*args, "--resume"]) == 0
        warm = capsys.readouterr()
        assert cold.out == warm.out
        assert "0 hit(s)" in cold.err and "0 miss(es)" in warm.err

    def test_no_store_opts_out(self, tmp_path, capsys):
        assert main(["plan", *self._args(tmp_path), "--no-store"]) == 0
        captured = capsys.readouterr()
        assert "store:" not in captured.err
        assert not (tmp_path / "index.json").exists()

    def test_stats_human_and_json(self, tmp_path, capsys):
        assert main(["plan", *self._args(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["store", "stats", "--store", str(tmp_path)]) == 0
        assert "kind plan: 1" in capsys.readouterr().out
        assert main(["store", "stats", "--store", str(tmp_path), "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 1 and stats["kinds"] == {"plan": 1}

    def test_verify_and_gc(self, tmp_path, capsys):
        assert main(["plan", *self._args(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["store", "verify", "--store", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out
        assert main(["store", "gc", "--store", str(tmp_path)]) == 0
        assert "removed 0 blob(s)" in capsys.readouterr().out
        # Corrupt the lone blob: verify flags it, --repair clears it.
        blob = next((tmp_path / "objects").glob("*/*.json"))
        blob.write_text("garbage")
        assert main(["store", "verify", "--store", str(tmp_path)]) == 1
        capsys.readouterr()
        assert main(["store", "verify", "--store", str(tmp_path), "--repair"]) == 1
        capsys.readouterr()
        assert main(["store", "verify", "--store", str(tmp_path)]) == 0

    def test_store_commands_need_a_store(self, capsys, monkeypatch):
        monkeypatch.delenv("IRIS_STORE", raising=False)
        assert main(["store", "stats"]) == 2
        assert "need --store DIR or $IRIS_STORE" in capsys.readouterr().err

    def test_iris_store_env_fallback(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("IRIS_STORE", str(tmp_path))
        assert main(["plan", "--dcs", "4", "--tolerance", "1"]) == 0
        assert "1 put(s)" in capsys.readouterr().err
        assert main(["store", "stats"]) == 0
        assert "entries: 1" in capsys.readouterr().out


class TestSimulateCommand:
    def test_simulation(self, capsys):
        code = main(
            [
                "simulate",
                "--dcs",
                "4",
                "--duration",
                "4",
                "--interval",
                "2",
                "--utilization",
                "0.3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "slowdown" in out


class TestTestbedCommand:
    def test_experiment(self, capsys):
        assert main(["testbed", "--duration", "120", "--period", "60"]) == 0
        out = capsys.readouterr().out
        assert "max pre-FEC BER" in out
        assert "error-free post-FEC: True" in out


class TestAnalyzeCommand:
    def test_analysis_summary(self, capsys):
        assert main(["analyze", "--regions", "3"]) == 0
        out = capsys.readouterr().out
        assert "latency inflation" in out
        assert "siting-area gain" in out


class TestFailoverCommand:
    def test_drill(self, capsys):
        code = main(
            ["failover", "--dcs", "4", "--tolerance", "1", "--map-index", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cutting duct" in out
        assert "audit: clean" in out
        assert "restored shortest paths" in out


class TestVersionFlag:
    def test_version_prints_package_version(self, capsys):
        import pytest as _pytest

        import repro

        with _pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"iris {repro.__version__}"


class TestServiceCommands:
    def test_jobs_against_dead_daemon_is_an_error(self, capsys):
        # Port 1 is never listening; the client error must surface as a
        # clean CLI error, not a traceback.
        assert main(["jobs", "--port", "1"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_submit_serve_round_trip(self, tmp_path, capsys):
        from repro.service import PlannerService, ServiceConfig

        with PlannerService(ServiceConfig(workers=1)).start() as service:
            _host, port = service.address
            out_file = tmp_path / "plan.json"
            code = main(
                [
                    "submit",
                    "--port",
                    str(port),
                    "--dcs",
                    "4",
                    "--fibers",
                    "6",
                    "--tolerance",
                    "1",
                    "--timeout",
                    "120",
                    "--out",
                    str(out_file),
                ]
            )
            assert code == 0
            out = capsys.readouterr().out
            assert "done (cold)" in out
            assert json.loads(out_file.read_text())["format_version"] >= 1
            assert main(["jobs", "--port", str(port)]) == 0
            assert "cold" in capsys.readouterr().out
