"""FCT metrics and slowdown summaries."""

import math

import pytest

from repro.exceptions import SimulationError
from repro.simulation.flowsim import FlowRecord
from repro.simulation.metrics import finished_fcts, slowdown_summary


def record(size_bytes: float, fct: float, finished: bool = True) -> FlowRecord:
    return FlowRecord(
        src="A",
        dst="B",
        size_bits=int(size_bytes * 8),
        t_arrive=0.0,
        t_finish=fct if finished else math.inf,
    )


class TestFinishedFcts:
    def test_filters_unfinished(self):
        records = [record(1000, 1.0), record(1000, 2.0, finished=False)]
        assert finished_fcts(records) == [1.0]

    def test_short_only(self):
        records = [record(1_000, 1.0), record(10_000_000, 5.0)]
        assert finished_fcts(records, short_only=True) == [1.0]


class TestSlowdownSummary:
    def test_identical_traces_give_unity(self):
        records = [record(1000, i / 10) for i in range(1, 101)]
        s = slowdown_summary(records, records)
        assert s.p99_all == pytest.approx(1.0)
        assert s.p99_short == pytest.approx(1.0)
        assert s.negligible

    def test_slower_iris_detected(self):
        eps = [record(1000, i / 10) for i in range(1, 101)]
        iris = [record(1000, 1.5 * i / 10) for i in range(1, 101)]
        s = slowdown_summary(iris, eps)
        assert s.p99_all == pytest.approx(1.5)
        assert not s.negligible

    def test_unfinished_counted(self):
        eps = [record(1000, 1.0)]
        iris = [record(1000, 1.0), record(1000, 0, finished=False)]
        s = slowdown_summary(iris, eps)
        assert s.iris_unfinished == 1
        assert s.eps_unfinished == 0

    def test_requires_finished_flows(self):
        with pytest.raises(SimulationError):
            slowdown_summary([], [record(1000, 1.0)])

    def test_no_short_flows_yields_nan(self):
        eps = [record(10_000_000, 2.0)]
        iris = [record(10_000_000, 2.0)]
        s = slowdown_summary(iris, eps)
        assert math.isnan(s.p99_short)
        assert s.p99_all == pytest.approx(1.0)
