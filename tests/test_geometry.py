"""Planar geometry helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.region.geometry import (
    Point,
    area_from_mask,
    bounding_box,
    estimated_fiber_km,
    euclidean_km,
    grid_points,
)

coords = st.floats(
    min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False
)


class TestPoint:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_midpoint(self):
        mid = Point(0, 0).midpoint(Point(10, 4))
        assert (mid.x, mid.y) == (5.0, 2.0)

    @given(ax=coords, ay=coords, bx=coords, by=coords)
    def test_distance_symmetry(self, ax, ay, bx, by):
        a, b = Point(ax, ay), Point(bx, by)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    @given(ax=coords, ay=coords, bx=coords, by=coords, cx=coords, cy=coords)
    def test_triangle_inequality(self, ax, ay, bx, by, cx, cy):
        a, b, c = Point(ax, ay), Point(bx, by), Point(cx, cy)
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6


class TestEstimatedFiber:
    def test_default_factor_is_two(self):
        # Fig 3 uses the industry 2x geo-distance rule [8, 15].
        assert estimated_fiber_km(10.0) == pytest.approx(20.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            estimated_fiber_km(-1.0)


class TestGrid:
    def test_grid_covers_extent(self):
        pts = grid_points(10.0, 5.0)
        assert len(pts) == 9  # 3 x 3 including boundaries
        xs = {p.x for p in pts}
        assert xs == {0.0, 5.0, 10.0}

    def test_grid_rejects_bad_args(self):
        with pytest.raises(ValueError):
            grid_points(0, 1)
        with pytest.raises(ValueError):
            grid_points(10, 0)

    def test_area_from_mask_full(self):
        mask = [True] * 100
        assert area_from_mask(mask, 10.0) == pytest.approx(100.0)

    def test_area_from_mask_half(self):
        mask = [True, False] * 50
        assert area_from_mask(mask, 10.0) == pytest.approx(50.0)

    def test_area_from_empty_mask(self):
        assert area_from_mask([], 10.0) == 0.0

    def test_bounding_box(self):
        lo, hi = bounding_box([Point(1, 5), Point(-2, 3), Point(4, -1)])
        assert (lo.x, lo.y) == (-2, -1)
        assert (hi.x, hi.y) == (4, 5)

    def test_bounding_box_empty(self):
        with pytest.raises(ValueError):
            bounding_box([])


def test_euclidean_km():
    assert euclidean_km(0, 0, 6, 8) == pytest.approx(10.0)
