"""Cascaded amplifier OSNR law (Fig 9)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.optics.osnr import (
    cascade_penalty_db,
    emulated_cascade,
    max_amplifiers_within_budget,
    osnr_after_amplifiers_db,
)


class TestClosedForm:
    def test_zero_amps_no_penalty(self):
        assert cascade_penalty_db(0) == 0.0

    def test_first_amp_costs_noise_figure(self):
        assert cascade_penalty_db(1) == pytest.approx(4.5)

    def test_doubling_costs_3db(self):
        # Fig 9: "each doubling of the number of amplifiers ... ~3 dB".
        for n in (1, 2, 4):
            delta = cascade_penalty_db(2 * n) - cascade_penalty_db(n)
            assert delta == pytest.approx(3.0, abs=0.02)

    def test_eight_amps_about_13_5db(self):
        assert cascade_penalty_db(8) == pytest.approx(4.5 + 9.0, abs=0.05)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            cascade_penalty_db(-1)

    def test_osnr_after(self):
        assert osnr_after_amplifiers_db(40.0, 4) == pytest.approx(
            40.0 - 4.5 - 6.0, abs=0.05
        )


class TestBudget:
    def test_paper_budget_allows_three_amps(self):
        # §3.2: 9 dB budget => "a maximum amplifier-count of 3 end-to-end".
        assert max_amplifiers_within_budget(9.0, 4.5) == 3

    def test_four_amps_never_fit(self):
        # penalty(4) = 4.5 + 6.0 dB, beyond the budget even with grace.
        assert max_amplifiers_within_budget(9.0, 4.5) < 4

    def test_budget_below_nf_allows_none(self):
        assert max_amplifiers_within_budget(3.0, 4.5) == 0


class TestEmulatedCascade:
    @given(n=st.integers(min_value=1, max_value=8))
    @settings(max_examples=8, deadline=None)
    def test_engine_matches_closed_form(self, n):
        # The budget engine, driven through the Fig 9 experimental setup
        # (gain-matched attenuation between amps), must reproduce the law.
        result = emulated_cascade(n)
        assert result.osnr_penalty_db == pytest.approx(
            cascade_penalty_db(n), abs=0.05
        )

    def test_power_restored_after_each_stage(self):
        result = emulated_cascade(5)
        assert result.rx_power_dbm == pytest.approx(-10.0)
