"""Channel plans and ASE channel emulation (§5.1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ReproError
from repro.optics.spectrum import ChannelPlan, SpectrumLoad


class TestChannelPlan:
    def test_frequencies_on_grid(self):
        plan = ChannelPlan(count=40, spacing_ghz=100.0)
        assert plan.frequency_thz(0) == pytest.approx(191.30)
        assert plan.frequency_thz(39) == pytest.approx(191.30 + 3.9)

    def test_out_of_range_index(self):
        plan = ChannelPlan(count=4)
        with pytest.raises(ReproError):
            plan.frequency_thz(4)
        with pytest.raises(ReproError):
            plan.frequency_thz(-1)

    def test_validation(self):
        with pytest.raises(ReproError):
            ChannelPlan(count=0)
        with pytest.raises(ReproError):
            ChannelPlan(count=4, spacing_ghz=0)


class TestSpectrumLoad:
    def test_everything_emulated_by_default(self):
        load = SpectrumLoad(ChannelPlan(count=8))
        assert load.emulated == frozenset(range(8))
        assert load.is_fully_loaded

    def test_live_channels_displace_ase(self):
        load = SpectrumLoad(ChannelPlan(count=8), live=frozenset({0, 3}))
        assert load.emulated == frozenset({1, 2, 4, 5, 6, 7})
        assert load.total_channels() == 8

    def test_add_and_drop(self):
        load = SpectrumLoad(ChannelPlan(count=8))
        load = load.add_live([1, 2])
        assert load.live == frozenset({1, 2})
        load = load.drop_live([1])
        assert load.live == frozenset({2})

    def test_drop_non_live_rejected(self):
        load = SpectrumLoad(ChannelPlan(count=8), live=frozenset({1}))
        with pytest.raises(ReproError):
            load.drop_live([2])

    def test_out_of_plan_live_rejected(self):
        with pytest.raises(ReproError):
            SpectrumLoad(ChannelPlan(count=4), live=frozenset({9}))

    @given(
        count=st.integers(min_value=1, max_value=64),
        live_seed=st.sets(st.integers(min_value=0, max_value=63)),
    )
    @settings(max_examples=60, deadline=None)
    def test_full_load_invariant(self, count, live_seed):
        """TC3's precondition: live + emulated always cover the full band,
        so amplifiers see constant spectral load across reconfigurations."""
        live = frozenset(i for i in live_seed if i < count)
        load = SpectrumLoad(ChannelPlan(count=count), live=live)
        assert load.live | load.emulated == frozenset(range(count))
        assert load.live & load.emulated == frozenset()
        assert load.total_channels() == count
