"""Management-complexity accounting (§2.3, §6.1) and integration checks."""

import pytest

from repro.analysis.complexity import (
    eps_complexity,
    iris_complexity,
    port_reduction_factor,
)
from repro.core.planner import plan_region


class TestComplexity:
    def test_toy_sites(self, toy_region):
        plan = plan_region(toy_region)
        iris = iris_complexity(plan)
        eps = eps_complexity(plan)
        # Both designs equip the 4 DCs and the 2 hubs.
        assert iris.equipment_sites == 6
        assert iris.in_network_sites == 2
        assert eps.equipment_sites == 6
        assert eps.in_network_sites == 2

    def test_iris_manages_fewer_in_network_ports(self, small_plan):
        factor = port_reduction_factor(small_plan)
        # §3: "reducing in-network ports by an order of magnitude".
        assert factor > 5.0

    def test_iris_in_network_sites_at_most_eps(self, small_plan):
        iris = iris_complexity(small_plan)
        eps = eps_complexity(small_plan)
        # EPS splices through degree-2 huts; Iris switches at every used
        # node — Iris touches at least as many sites but each is passive.
        assert iris.in_network_sites >= eps.in_network_sites
        assert iris.in_network_ports < eps.in_network_ports

    def test_device_class_counts(self, small_plan):
        assert iris_complexity(small_plan).device_classes == 4
        assert eps_complexity(small_plan).device_classes == 3


class TestServiceAreaRendering:
    def test_render_marks_sites(self):
        from repro.region.catalog import make_region
        from repro.region.siting import (
            distributed_service_area,
            render_service_area,
        )

        instance = make_region(map_index=0, n_dcs=4)
        region = instance.spec
        area = distributed_service_area(
            region.fiber_map,
            instance.extent_km,
            spacing_km=8.0,
            margin_km=24.0,
        )
        points = [region.fiber_map.position(dc) for dc in region.dcs]
        picture = render_service_area(area, points)
        rows = picture.split("\n")
        # Rectangular, containing feasible marks and the DC markers.
        assert len({len(r) for r in rows}) == 1
        assert picture.count("D") >= 1
        assert "#" in picture

    def test_render_empty_area_rejected(self):
        from repro.exceptions import RegionError
        from repro.region.siting import ServiceArea, render_service_area

        with pytest.raises(RegionError):
            render_service_area(ServiceArea((), (), 0.0))


class TestHybridPrefixValidity:
    def test_merged_pairs_share_the_prefix(self, small_plan):
        """Every merge's pairs route through (endpoint -> hut) as an actual
        prefix of their shortest path — the physical precondition for
        combining their residual fibers (Appendix B)."""
        from repro.designs.hybrid import hybridize

        hybrid = hybridize(small_plan)
        base = small_plan.topology.base_paths
        assert hybrid.merges, "expected at least one merge on this plan"
        for merge in hybrid.merges:
            for pair in merge.pairs:
                path = base[pair]
                assert merge.endpoint in (path[0], path[-1])
                ordered = (
                    path if path[0] == merge.endpoint else tuple(reversed(path))
                )
                assert merge.hut in ordered[1:-1]
                depth = ordered.index(merge.hut)
                assert depth == merge.shared_spans


class TestWavelengthAssignmentOnRealPlan:
    def test_one_wavelength_per_pair_colours(self, small_plan):
        from repro.designs.wavelength_network import assign_wavelengths

        paths = small_plan.topology.base_paths
        demands = {pair: 1 for pair in paths}
        plan = assign_wavelengths(
            paths, demands, small_plan.region.wavelengths_per_fiber
        )
        assert plan.validate() == []
        assert len(plan.colours) == len(paths)

    def test_tiny_spectrum_exhausts_on_shared_trunks(self, small_plan):
        from repro.designs.wavelength_network import colourable_fraction

        paths = small_plan.topology.base_paths
        demands = {pair: 1 for pair in paths}
        frac = colourable_fraction(paths, demands, 2)
        assert frac < 1.0
