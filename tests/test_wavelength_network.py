"""Appendix B wavelength-switched machinery: colouring, OXC feasibility."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.designs.wavelength_network import (
    assign_wavelengths,
    colourable_fraction,
    oxc_path_feasible,
)
from repro.exceptions import PlanningError
from repro.region.fibermap import FiberMap, duct_key


def line_paths():
    """Three pairs sharing a middle trunk duct."""
    paths = {
        ("A", "B"): ("A", "X", "Y", "B"),
        ("A", "C"): ("A", "X", "Y", "C"),
        ("D", "B"): ("D", "X", "Y", "B"),
    }
    return paths


class TestAssignment:
    def test_shared_duct_forces_distinct_colours(self):
        plan = assign_wavelengths(line_paths(), {p: 1 for p in line_paths()}, 8)
        trunk = duct_key("X", "Y")
        assert len(plan.duct_usage[trunk]) == 3
        assert plan.validate() == []

    def test_disjoint_paths_reuse_colours(self):
        paths = {("A", "B"): ("A", "X", "B"), ("C", "D"): ("C", "Y", "D")}
        plan = assign_wavelengths(paths, {p: 1 for p in paths}, 4)
        assert plan.colours_for(("A", "B")) == [0]
        assert plan.colours_for(("C", "D")) == [0]

    def test_exhaustion_raises(self):
        with pytest.raises(PlanningError, match="exhaustion"):
            assign_wavelengths(line_paths(), {p: 3 for p in line_paths()}, 8)

    def test_exact_fill_succeeds(self):
        paths = {("A", "B"): ("A", "X", "B")}
        plan = assign_wavelengths(paths, {("A", "B"): 4}, 4)
        assert plan.colours_for(("A", "B")) == [0, 1, 2, 3]
        assert plan.peak_usage == 4

    def test_zero_demand_ok(self):
        plan = assign_wavelengths(line_paths(), {p: 0 for p in line_paths()}, 4)
        assert plan.peak_usage == 0

    def test_negative_demand_rejected(self):
        with pytest.raises(PlanningError):
            assign_wavelengths(line_paths(), {("A", "B"): -1}, 4)

    def test_missing_path_rejected(self):
        with pytest.raises(PlanningError, match="no path"):
            assign_wavelengths({}, {("A", "B"): 1}, 4)

    @given(
        demands=st.lists(st.integers(min_value=0, max_value=3), min_size=3, max_size=3),
        lam=st.integers(min_value=9, max_value=16),
    )
    @settings(max_examples=40, deadline=None)
    def test_no_collisions_property(self, demands, lam):
        paths = line_paths()
        demand_map = dict(zip(sorted(paths), demands))
        plan = assign_wavelengths(paths, demand_map, lam)
        # Rebuild usage from colours and compare: no duct carries a colour
        # twice.
        seen: dict[tuple, set] = {}
        for (pair, unit), colour in plan.colours.items():
            path = paths[pair]
            for u, v in zip(path, path[1:]):
                key = duct_key(u, v)
                bucket = seen.setdefault(key, set())
                assert colour not in bucket
                bucket.add(colour)


class TestColourableFraction:
    def test_full_when_spectrum_suffices(self):
        assert colourable_fraction(line_paths(), {p: 2 for p in line_paths()}, 8) == 1.0

    def test_partial_when_exhausted(self):
        frac = colourable_fraction(line_paths(), {p: 4 for p in line_paths()}, 8)
        assert frac == pytest.approx(8 / 12)

    def test_empty_demand(self):
        assert colourable_fraction(line_paths(), {p: 0 for p in line_paths()}, 8) == 1.0


class TestOxcFeasibility:
    def make_map(self, first_km, second_km):
        fmap = FiberMap()
        fmap.add_dc("A", 0, 0)
        fmap.add_hut("X", first_km, 0)
        fmap.add_dc("B", first_km + second_km, 0)
        fmap.add_duct("A", "X", length_km=first_km)
        fmap.add_duct("X", "B", length_km=second_km)
        return fmap

    def test_short_path_fits_one_run(self):
        fmap = self.make_map(10, 10)
        result = oxc_path_feasible(fmap, ("A", "X", "B"), "X")
        assert result.feasible and not result.needs_inline_amp

    def test_medium_path_needs_amp_at_oxc(self):
        # 30 km fiber (7.5 dB) + 2 OSS (3 dB) + 9 dB OXC = 19.5 <= 20: one
        # run. Stretch to 40 km: 10 + 3 + 9 = 22 > 20 -> amp at the OXC.
        fmap = self.make_map(20, 20)
        result = oxc_path_feasible(fmap, ("A", "X", "B"), "X")
        assert result.feasible and result.needs_inline_amp

    def test_long_heavily_switched_path_infeasible(self):
        fmap = FiberMap()
        fmap.add_dc("A", 0, 0)
        prev = "A"
        for i, x in enumerate((15, 30, 45, 60, 75)):
            fmap.add_hut(f"H{i}", x, 0)
            fmap.add_duct(prev, f"H{i}", length_km=15)
            prev = f"H{i}"
        fmap.add_dc("B", 90, 0)
        fmap.add_duct(prev, "B", length_km=15)
        path = ("A", "H0", "H1", "H2", "H3", "H4", "B")
        result = oxc_path_feasible(fmap, path, "H2")
        assert not result.feasible

    def test_oxc_must_be_interior(self):
        fmap = self.make_map(10, 10)
        result = oxc_path_feasible(fmap, ("A", "X", "B"), "A")
        assert not result.feasible
