"""Emulated testbed experiments (§6.2, Fig 14)."""

import pytest

from repro.exceptions import ReproError
from repro.testbed.emulator import IrisTestbed, SpoolConfiguration
from repro.testbed.experiments import run_reconfiguration_experiment
from repro.units import FEC_BER_THRESHOLD, POST_FEC_BER


class TestSpoolConfiguration:
    def test_spans_match_paper(self):
        # §6.2: combinations A(60-60, 20-10) and B(20-60, 60-10).
        assert SpoolConfiguration.A.spans_km("DC2") == (60.0, 60.0)
        assert SpoolConfiguration.A.spans_km("DC3") == (20.0, 10.0)
        assert SpoolConfiguration.B.spans_km("DC2") == (20.0, 60.0)
        assert SpoolConfiguration.B.spans_km("DC3") == (60.0, 10.0)

    def test_other_toggles(self):
        assert SpoolConfiguration.A.other() is SpoolConfiguration.B
        assert SpoolConfiguration.B.other() is SpoolConfiguration.A

    def test_unknown_receiver(self):
        with pytest.raises(ReproError):
            SpoolConfiguration.A.spans_km("DC9")


class TestTestbed:
    def test_amplifier_used_interchangeably(self):
        # "over time, both DC-DC paths interchangeably utilize the hut
        # amplifier": the long-input path amplifies in each configuration.
        tb = IrisTestbed()
        assert tb.uses_amplifier("DC2") and not tb.uses_amplifier("DC3")
        tb.swap()
        assert tb.uses_amplifier("DC3") and not tb.uses_amplifier("DC2")

    def test_all_readings_below_fec_threshold(self):
        tb = IrisTestbed()
        for _ in range(2):
            for reading in tb.readings().values():
                assert reading.prefec_ber < FEC_BER_THRESHOLD
                assert reading.postfec_ber == POST_FEC_BER
            tb.swap()

    def test_power_management_needs_no_gain_adjustment(self):
        # §6.2 "Power management": no power variations across varying
        # lengths with occasional in-line amplification.
        assert IrisTestbed().power_uniform_across_configurations()

    def test_swap_rewires_hut_switch(self):
        tb = IrisTestbed()
        before = tb.hut_switch.connections()
        tb.swap()
        after = tb.hut_switch.connections()
        assert before != after
        assert set(before) == set(after)  # same input ports, new outputs

    def test_spectrum_always_fully_loaded(self):
        tb = IrisTestbed()
        for load in tb.fiber_loads.values():
            assert load.is_fully_loaded
            assert len(load.live) == tb.config.live_channels_per_fiber


class TestExperiment:
    def test_fig14_headline(self):
        summary = run_reconfiguration_experiment(
            duration_s=180.0, reconfig_period_s=60.0, sample_interval_s=0.01
        )
        assert summary.reconfigurations == 2
        # "The received pre-FEC BERs are well below the soft decision FEC
        # threshold (2e-2)".
        assert summary.always_below_threshold
        assert summary.max_prefec_ber < FEC_BER_THRESHOLD / 10

    def test_recovery_gap_is_50ms(self):
        summary = run_reconfiguration_experiment(
            duration_s=120.0, reconfig_period_s=60.0, sample_interval_s=0.01
        )
        assert summary.recovery_time_s == pytest.approx(0.050)
        unlocked = [s for s in summary.samples if not s.locked]
        # One reconfiguration, two receivers, ~5 samples each at 10 ms.
        assert 6 <= len(unlocked) <= 14
        assert all(s.t_s >= 60.0 for s in unlocked)

    def test_two_hut_recovery_is_70ms(self):
        summary = run_reconfiguration_experiment(
            duration_s=120.0,
            reconfig_period_s=60.0,
            sample_interval_s=0.01,
            two_huts=True,
        )
        assert summary.recovery_time_s == pytest.approx(0.070)

    def test_availability_reflects_outages(self):
        summary = run_reconfiguration_experiment(
            duration_s=120.0, reconfig_period_s=60.0, sample_interval_s=0.01
        )
        assert 0.99 < summary.availability() < 1.0

    def test_bad_args_rejected(self):
        with pytest.raises(ReproError):
            run_reconfiguration_experiment(duration_s=0)
