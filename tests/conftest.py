"""Shared fixtures: the paper's §3.4 toy region and a small synthetic one."""

from __future__ import annotations

import pytest

from repro.region.fibermap import (
    FiberMap,
    OperationalConstraints,
    RegionSpec,
)
from repro.region.catalog import make_region


def build_toy_map(
    spoke_km: float = 10.0, trunk_km: float = 20.0
) -> FiberMap:
    """The Fig 10 topology: DC1, DC2 on hub H1; DC3, DC4 on hub H2; H1-H2.

    Distances default to values where no amplification is needed and the
    SLA holds, so the §3.4 fiber/transceiver arithmetic is exact.
    """
    fmap = FiberMap()
    fmap.add_hut("H1", 0.0, 0.0)
    fmap.add_hut("H2", trunk_km, 0.0)
    fmap.add_dc("DC1", -5.0, 5.0)
    fmap.add_dc("DC2", -5.0, -5.0)
    fmap.add_dc("DC3", trunk_km + 5.0, 5.0)
    fmap.add_dc("DC4", trunk_km + 5.0, -5.0)
    fmap.add_duct("DC1", "H1", length_km=spoke_km)  # L1
    fmap.add_duct("DC2", "H1", length_km=spoke_km)  # L2
    fmap.add_duct("DC3", "H2", length_km=spoke_km)  # L3
    fmap.add_duct("DC4", "H2", length_km=spoke_km)  # L4
    fmap.add_duct("H1", "H2", length_km=trunk_km)  # L5
    return fmap


@pytest.fixture
def toy_map() -> FiberMap:
    return build_toy_map()


@pytest.fixture
def toy_region(toy_map: FiberMap) -> RegionSpec:
    """The §3.4 example: 4 DCs x 160 Tbps => f=10 fiber-pairs, lambda=40.

    The toy map is a tree, so failures cannot be tolerated: tolerance 0.
    """
    return RegionSpec(
        fiber_map=toy_map,
        dc_fibers={f"DC{i}": 10 for i in range(1, 5)},
        wavelengths_per_fiber=40,
        constraints=OperationalConstraints(failure_tolerance=0),
    )


@pytest.fixture(scope="session")
def small_region_instance():
    """A small synthetic region with 2-cut tolerance (session-cached)."""
    return make_region(map_index=0, n_dcs=5, dc_fibers=8)


@pytest.fixture(scope="session")
def small_plan(small_region_instance):
    """A full Iris plan for the small region (expensive; session-cached)."""
    from repro.core.planner import plan_region

    return plan_region(small_region_instance.spec)
