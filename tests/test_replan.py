"""Incremental replanning parity: ``apply_delta`` == cold replan, bytewise.

The contract under test is absolute: for every :class:`RegionDelta` kind,
the patched plan's ``plan_to_json(..., full=True)`` must equal a cold
replan of the mutated region byte for byte — and when the patch path
raises :class:`InfeasibleRegionError`, the cold path must raise too.
``verify=True`` runs that comparison inside ``apply_delta`` itself.
"""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.planner import plan_region
from repro.exceptions import InfeasibleRegionError, RegionError
from repro.region.catalog import make_region
from repro.region.delta import DELTA_KINDS, RegionDelta, delta_from_dict
from repro.serialize import plan_to_json
from repro.service.replan import DeltaStats, apply_delta


@pytest.fixture(scope="module")
def base_region():
    """A small 2-cut-tolerant region (module-cached; plans in ~100s of ms)."""
    return make_region(map_index=0, n_dcs=4, dc_fibers=6).spec


@pytest.fixture(scope="module")
def base_plan(base_region):
    return plan_region(base_region)


def _bypass_delta(plan, factor: float = 1.05) -> RegionDelta:
    """A new duct priced just above its worst-case alternative distance.

    Between two non-adjacent nodes that stay connected in every enumerated
    scenario, with ``length = factor x max over scenarios of the shortest
    alternative route`` — so every strict bypass check passes, no scenario
    is recomputed, and the whole optical realization is reusable.
    """
    fmap = plan.region.fiber_map
    scenarios = list(plan.topology.scenario_paths)
    for u in fmap.nodes:
        for v in fmap.nodes:
            if v <= u or (min(u, v), max(u, v)) in set(fmap.ducts):
                continue
            worst = 0.0
            for scenario in scenarios:
                graph = fmap.subgraph_without(scenario)
                try:
                    dist = nx.dijkstra_path_length(
                        graph, u, v, weight="length_km"
                    )
                except (nx.NetworkXNoPath, nx.NodeNotFound):
                    worst = None
                    break
                worst = max(worst, dist)
            if worst is not None and worst > 0:
                return RegionDelta.duct_added(u, v, length_km=factor * worst)
    raise AssertionError("no bypassable node pair in the base region")


class TestDeltaParity:
    """Each kind, deterministically, with the in-band cold comparison."""

    def test_duct_added_bypass_reuses_realization(self, base_plan):
        stats = DeltaStats()
        patched = apply_delta(
            base_plan, _bypass_delta(base_plan), verify=True, stats=stats
        )
        assert stats.mode == "add"
        assert stats.computed == 0
        assert stats.realization == "reused"
        assert patched.region is not base_plan.region

    def test_duct_added_short_recomputes_some(self, base_plan):
        # A genuinely useful shortcut: the oracle must *decline* scenarios
        # it cannot prove unchanged, and the result still matches cold.
        delta = _bypass_delta(base_plan)
        short = RegionDelta.duct_added(*delta.duct, length_km=1.0)
        stats = DeltaStats()
        try:
            apply_delta(base_plan, short, verify=True, stats=stats)
        except InfeasibleRegionError:
            with pytest.raises(InfeasibleRegionError):
                plan_region(short.apply_to_region(base_plan.region))
            return
        assert stats.mode == "add"
        assert stats.computed > 0

    def test_duct_cut_round_trip(self, base_plan):
        # Cut parity on a guaranteed-feasible mutation: add a bypass duct,
        # then cut it again — the final region IS the original region, so
        # the patched bytes must equal the original plan's bytes.
        add = _bypass_delta(base_plan)
        widened = apply_delta(base_plan, add, verify=True)
        cut = RegionDelta.duct_cut(*add.duct)
        stats = DeltaStats()
        restored = apply_delta(widened, cut, verify=True, stats=stats)
        assert stats.mode == "cut"
        assert plan_to_json(restored, full=True) == plan_to_json(
            base_plan, full=True
        )

    def test_dc_resized_is_identity_mode(self, base_plan):
        dc = sorted(base_plan.region.dc_fibers)[0]
        delta = RegionDelta.dc_resized(
            dc, base_plan.region.dc_fibers[dc] + 2
        )
        stats = DeltaStats()
        patched = apply_delta(base_plan, delta, verify=True, stats=stats)
        assert stats.mode == "identity"
        assert stats.computed == 0
        assert patched.region.dc_fibers[dc] == base_plan.region.dc_fibers[dc] + 2

    def test_dc_detached_plans_cold_but_matches(self, base_plan):
        dc = sorted(base_plan.region.dc_fibers)[-1]
        stats = DeltaStats()
        try:
            apply_delta(
                base_plan, RegionDelta.dc_detached(dc), verify=True, stats=stats
            )
        except InfeasibleRegionError:
            with pytest.raises(InfeasibleRegionError):
                plan_region(
                    RegionDelta.dc_detached(dc).apply_to_region(
                        base_plan.region
                    )
                )
            return
        assert stats.mode == "cold"

    def test_dc_attached_plans_cold_but_matches(self, base_plan):
        region = base_plan.region
        fmap = region.fiber_map
        # Tie the new DC into three distinct existing nodes so the 2-cut
        # tolerance remains satisfiable.
        anchors = sorted(fmap.nodes)[:3]
        ducts = tuple(
            (anchor, 12.0 + 2.0 * i) for i, anchor in enumerate(anchors)
        )
        delta = RegionDelta.dc_attached(
            "DCX", x=1.0, y=1.0, fibers=4, ducts=ducts
        )
        stats = DeltaStats()
        try:
            patched = apply_delta(base_plan, delta, verify=True, stats=stats)
        except InfeasibleRegionError:
            with pytest.raises(InfeasibleRegionError):
                plan_region(delta.apply_to_region(region))
            return
        assert stats.mode == "cold"
        assert "DCX" in patched.region.dc_fibers

    def test_price_changed_returns_plan_unchanged(self, base_plan):
        delta = RegionDelta.price_changed(transceiver_dci=123.0)
        stats = DeltaStats()
        patched = apply_delta(base_plan, delta, stats=stats)
        assert patched is base_plan
        assert stats.mode == "price"


def _delta_strategy(region):
    """One feasible-by-construction-or-detectably-infeasible delta."""
    dcs = sorted(region.dc_fibers)
    nodes = sorted(region.fiber_map.nodes)
    existing = set(region.fiber_map.ducts)
    non_adjacent = [
        (u, v)
        for i, u in enumerate(nodes)
        for v in nodes[i + 1 :]
        if (u, v) not in existing
    ]
    return st.one_of(
        st.builds(
            RegionDelta.dc_resized,
            st.sampled_from(dcs),
            st.integers(min_value=2, max_value=12),
        ),
        st.sampled_from(non_adjacent).flatmap(
            lambda pair: st.floats(
                min_value=5.0, max_value=120.0, allow_nan=False
            ).map(lambda km: RegionDelta.duct_added(*pair, length_km=km))
        ),
        st.sampled_from(sorted(existing)).map(
            lambda duct: RegionDelta.duct_cut(*duct)
        ),
        st.sampled_from(dcs).map(RegionDelta.dc_detached),
        st.builds(
            lambda anchors, fibers: RegionDelta.dc_attached(
                "DCNEW",
                x=2.0,
                y=3.0,
                fibers=fibers,
                ducts=tuple((a, 15.0) for a in anchors),
            ),
            st.permutations(nodes).map(lambda p: tuple(sorted(p[:3]))),
            st.integers(min_value=2, max_value=8),
        ),
        st.just(RegionDelta.price_changed(amplifier=999.0)),
    )


class TestDeltaParityProperty:
    """Randomized deltas over every kind, verified against cold in-band."""

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(data=st.data())
    def test_random_delta_matches_cold(self, base_plan, data):
        delta = data.draw(_delta_strategy(base_plan.region))
        try:
            apply_delta(base_plan, delta, verify=True)
        except InfeasibleRegionError:
            # Parity on the failure path too: cold must agree the mutated
            # region is unplannable.
            with pytest.raises(InfeasibleRegionError):
                plan_region(delta.apply_to_region(base_plan.region))


class TestDeltaCodec:
    def test_round_trip_every_kind(self, base_region):
        dc = sorted(base_region.dc_fibers)[0]
        u, v = sorted(base_region.fiber_map.ducts)[0]
        deltas = [
            RegionDelta.duct_added("A", "B", length_km=7.5),
            RegionDelta.duct_cut(u, v),
            RegionDelta.dc_attached(
                "DCX", x=1.0, y=2.0, fibers=4, ducts=(("A", 3.0), ("B", 4.0))
            ),
            RegionDelta.dc_detached(dc),
            RegionDelta.dc_resized(dc, 9),
            RegionDelta.price_changed(amplifier=10.0, oxc_port=20.0),
        ]
        assert sorted({d.kind for d in deltas}) == sorted(DELTA_KINDS)
        for delta in deltas:
            assert delta_from_dict(delta.to_dict()) == delta

    def test_bad_payloads_raise(self):
        good = RegionDelta.duct_cut("A", "B").to_dict()
        with pytest.raises(RegionError):
            delta_from_dict({**good, "format_version": 99})
        with pytest.raises(RegionError):
            delta_from_dict({**good, "kind": "duct_teleported"})
        with pytest.raises(RegionError):
            delta_from_dict({"kind": "duct_cut"})

    def test_constructor_validation(self):
        with pytest.raises(RegionError):
            RegionDelta.duct_added("A", "A", length_km=5.0)
        with pytest.raises(RegionError):
            RegionDelta.duct_added("A", "B", length_km=-1.0)
        with pytest.raises(RegionError):
            RegionDelta.dc_resized("DC1", 0)
        with pytest.raises(RegionError):
            RegionDelta.dc_attached("DCX", x=0.0, y=0.0, fibers=4, ducts=())

    def test_price_field_names_validated_on_apply(self):
        from repro.cost.pricebook import PriceBook

        delta = RegionDelta.price_changed(no_such_field=1.0)
        with pytest.raises(RegionError):
            delta.apply_to_pricebook(PriceBook())
