"""The planner service: protocol, coalescing, cache-aside, drain.

The stampede test is the tentpole's acceptance check: N concurrent
clients asking for one uncached plan must cost exactly one cold plan
(asserted from the service counters *and* the obs mirror) and every
client must receive bit-identical bytes.
"""

from __future__ import annotations

import io
import json
import threading

import pytest

from repro import obs
from repro.exceptions import ServiceError
from repro.region.delta import RegionDelta
from repro.serialize import region_to_dict
from repro.service import PlannerService, ServiceConfig, ServiceClient
from repro.service.protocol import (
    MAX_MESSAGE_BYTES,
    PROTOCOL_VERSION,
    check_protocol_version,
    encode_message,
    read_message,
)
from repro.store import PlanStore


class TestProtocol:
    def test_round_trip(self):
        message = {"op": "ping", "n": 1, "nested": {"a": [1, 2]}}
        stream = io.BytesIO(encode_message(message) + encode_message({"op": "x"}))
        assert read_message(stream) == message
        assert read_message(stream) == {"op": "x"}
        assert read_message(stream) is None  # clean EOF

    def test_encoding_is_canonical(self):
        a = encode_message({"b": 1, "a": 2})
        b = encode_message({"a": 2, "b": 1})
        assert a == b
        assert a.endswith(b"\n")

    def test_oversized_line_rejected(self):
        stream = io.BytesIO(b"x" * (MAX_MESSAGE_BYTES + 10) + b"\n")
        with pytest.raises(ServiceError):
            read_message(stream)

    def test_garbage_rejected(self):
        with pytest.raises(ServiceError):
            read_message(io.BytesIO(b"not json\n"))
        with pytest.raises(ServiceError):
            read_message(io.BytesIO(b"[1, 2, 3]\n"))

    def test_version_mismatch_rejected(self):
        check_protocol_version({"protocol_version": PROTOCOL_VERSION})
        check_protocol_version({})  # absent = assumed current
        with pytest.raises(ServiceError):
            check_protocol_version({"protocol_version": 999})


def _submit_request(region, delta=None):
    request = {"op": "submit", "region": region_to_dict(region)}
    if delta is not None:
        request["delta"] = delta.to_dict()
    return request


class TestHandleDispatch:
    """handle() is a pure request->response function; no sockets needed."""

    def test_ping_reports_version(self):
        import repro

        service = PlannerService(ServiceConfig())
        response = service.handle({"op": "ping"})
        assert response["ok"] and response["version"] == repro.__version__

    def test_unknown_op_and_bad_submit(self):
        service = PlannerService(ServiceConfig())
        assert not service.handle({"op": "warp"})["ok"]
        assert not service.handle({"op": "submit"})["ok"]
        assert not service.handle({"op": "status", "job_id": "job-9"})["ok"]

    def test_version_mismatch_is_an_error_response(self):
        service = PlannerService(ServiceConfig())
        response = service.handle({"op": "ping", "protocol_version": 999})
        assert not response["ok"]
        assert "protocol version" in response["error"]

    def test_queue_bound_rejects(self, toy_region):
        # No workers started: submissions stack up in the bounded queue.
        service = PlannerService(ServiceConfig(queue_size=2))
        seen = set()
        for i in range(2):
            region = RegionDelta.dc_resized("DC1", 11 + i).apply_to_region(
                toy_region
            )
            response = service.handle(_submit_request(region))
            assert response["ok"], response
            seen.add(response["job_id"])
        overflow = service.handle(
            _submit_request(
                RegionDelta.dc_resized("DC1", 99).apply_to_region(toy_region)
            )
        )
        assert not overflow["ok"] and overflow["rejected"]
        assert service.counters()["rejected"] == 1
        assert len(seen) == 2

    def test_draining_rejects_submissions(self, toy_region):
        service = PlannerService(ServiceConfig())
        service._draining = True
        response = service.handle(_submit_request(toy_region))
        assert not response["ok"] and response.get("rejected")


class TestStampede:
    def test_n_clients_one_cold_plan(self, toy_region):
        """The cache-stampede guarantee, from counters and from bytes."""
        n_clients = 8
        # Workers start only after the stampede: the job stays in flight
        # for the whole submission burst, so the coalescing window is
        # deterministic no matter how warm the hose cache happens to be.
        service = PlannerService(ServiceConfig(workers=2))
        try:
            with obs.tracing("stampede") as tracer:
                submits = [None] * n_clients
                barrier = threading.Barrier(n_clients)

                def client(i):
                    barrier.wait()
                    submits[i] = service.handle(_submit_request(toy_region))

                threads = [
                    threading.Thread(target=client, args=(i,))
                    for i in range(n_clients)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
                assert all(s["ok"] for s in submits)
                # Single-flight: every submission landed on one job.
                job_ids = {s["job_id"] for s in submits}
                assert len(job_ids) == 1
                service._start_workers()
                results = [
                    service.handle(
                        {"op": "result", "job_id": s["job_id"], "timeout_s": 120}
                    )
                    for s in submits
                ]
            record = tracer.record()
            assert all(r["ok"] for r in results)
            payloads = {r["plan"] for r in results}
            assert len(payloads) == 1  # bit-identical responses
            counters = service.counters()
            assert counters["cold"] == 1
            assert counters["queued"] == 1
            assert counters["coalesced"] == n_clients - 1
            assert counters["completed"] == 1
            # The obs mirror agrees with the service's own books.
            assert record.total("service.cold") == 1
            assert record.total("service.coalesced") == n_clients - 1
        finally:
            service.close()


class TestDaemonEndToEnd:
    def test_submit_store_delta_over_tcp(self, toy_region, tmp_path):
        store = PlanStore(tmp_path / "store")
        config = ServiceConfig(workers=2)
        with PlannerService(config, store=store).start() as service:
            with ServiceClient(service.address) as client:
                assert client.ping()["ok"]
                first = client.submit(toy_region)
                result = client.result(first["job_id"], timeout_s=120)
                assert result["outcome"] == "cold"

                # Same request again: served from the store, same bytes.
                second = client.submit(toy_region)
                warm = client.result(second["job_id"], timeout_s=120)
                assert warm["outcome"] == "store"
                assert warm["plan"] == result["plan"]

                # A delta job patches instead of replanning.
                delta = RegionDelta.dc_resized("DC1", 12)
                third = client.submit(toy_region, delta=delta)
                patched = client.result(third["job_id"], timeout_s=120)
                assert patched["outcome"] == "patched"
                assert patched["delta_stats"]["mode"] == "identity"

                # Patched plan equals a cold plan of the mutated region.
                fourth = client.submit(delta.apply_to_region(toy_region))
                cold = client.result(fourth["job_id"], timeout_s=120)
                assert cold["outcome"] == "store"  # patched plan was stored
                assert cold["plan"] == patched["plan"]

                jobs = client.jobs()
                assert len(jobs) == 4
                counters = client.stats()["counters"]
                assert counters["cold"] == 1
                assert counters["patched"] == 1
                assert counters["store_hits"] == 2

    def test_warm_store_survives_restart(self, toy_region, tmp_path):
        store_dir = tmp_path / "store"
        with PlannerService(ServiceConfig(), store=PlanStore(store_dir)).start() as service:
            with ServiceClient(service.address) as client:
                job = client.submit(toy_region)
                assert client.result(job["job_id"], timeout_s=120)["outcome"] == "cold"
        # Kill and restart on the same store: the plan is warm.
        with PlannerService(ServiceConfig(), store=PlanStore(store_dir)).start() as service:
            with ServiceClient(service.address) as client:
                job = client.submit(toy_region)
                result = client.result(job["job_id"], timeout_s=120)
                assert result["outcome"] == "store"

    def test_job_timeout_cancels(self, toy_region):
        # A deadline that has effectively already passed: the planner's
        # first cancel checkpoint unwinds the job as failed/timeout.
        config = ServiceConfig(job_timeout_s=1e-9)
        with PlannerService(config).start() as service:
            with ServiceClient(service.address) as client:
                job = client.submit(toy_region)
                with pytest.raises(ServiceError, match="cancelled|timeout"):
                    client.result(job["job_id"], timeout_s=60)
                counters = client.stats()["counters"]
                assert counters["timeouts"] == 1
                assert counters["failed"] == 1

    def test_result_timeout_is_an_error_not_a_hang(self, toy_region):
        service = PlannerService(ServiceConfig())  # no workers: never runs
        response = service.handle(_submit_request(toy_region))
        result = service.handle(
            {"op": "result", "job_id": response["job_id"], "timeout_s": 0.05}
        )
        assert not result["ok"]
        assert "timed out" in result["error"]

    def test_shutdown_drains_in_flight_work(self, toy_region):
        with PlannerService(ServiceConfig(workers=1)).start() as service:
            with ServiceClient(service.address) as client:
                job = client.submit(toy_region)
                client.shutdown(timeout_s=60)
                # The in-flight job still completes before the daemon dies.
                result = client.result(job["job_id"], timeout_s=120)
                assert result["ok"] and result["outcome"] == "cold"
            assert service.wait_closed(timeout=30)
            follow_up = service.handle(_submit_request(toy_region))
            assert not follow_up["ok"]

    def test_infeasible_region_fails_cleanly(self, toy_region):
        # The toy map is a tree: cutting any duct is unplannable. The job
        # must fail with the planner's error, not wedge the worker.
        delta = RegionDelta.duct_cut("DC1", "H1")
        with PlannerService(ServiceConfig()).start() as service:
            with ServiceClient(service.address) as client:
                job = client.submit(toy_region, delta=delta)
                with pytest.raises(ServiceError):
                    client.result(job["job_id"], timeout_s=120)
                status = client.status(job["job_id"])
                assert status["state"] == "failed"
                # The daemon is still healthy afterwards.
                assert client.ping()["ok"]


class TestClientErrors:
    def test_connect_refused_raises_service_error(self):
        with pytest.raises(ServiceError, match="cannot reach"):
            ServiceClient(("127.0.0.1", 1), connect_timeout_s=0.5)

    def test_malformed_line_gets_error_response(self, toy_region):
        import socket as socket_mod

        with PlannerService(ServiceConfig()).start() as service:
            with socket_mod.create_connection(service.address, timeout=10) as sock:
                sock.sendall(b"this is not json\n")
                reply = json.loads(sock.makefile("rb").readline())
                assert not reply["ok"]
