"""FiberMap and RegionSpec invariants."""

import networkx as nx
import pytest

from repro.exceptions import RegionError
from repro.region.fibermap import (
    FiberMap,
    NodeKind,
    OperationalConstraints,
    RegionSpec,
    duct_key,
    pair_key,
)


class TestKeys:
    def test_duct_key_canonical(self):
        assert duct_key("B", "A") == ("A", "B")
        assert duct_key("A", "B") == ("A", "B")

    def test_duct_key_rejects_self_loop(self):
        with pytest.raises(RegionError):
            duct_key("A", "A")

    def test_pair_key_canonical(self):
        assert pair_key("DC2", "DC1") == ("DC1", "DC2")


class TestFiberMapConstruction:
    def test_add_nodes_and_kinds(self, toy_map):
        assert toy_map.kind("DC1") is NodeKind.DC
        assert toy_map.kind("H1") is NodeKind.HUT
        assert toy_map.dcs == ["DC1", "DC2", "DC3", "DC4"]
        assert toy_map.huts == ["H1", "H2"]

    def test_duplicate_node_rejected(self):
        fmap = FiberMap()
        fmap.add_dc("A", 0, 0)
        with pytest.raises(RegionError):
            fmap.add_hut("A", 1, 1)

    def test_duplicate_duct_rejected(self, toy_map):
        with pytest.raises(RegionError):
            toy_map.add_duct("DC1", "H1")

    def test_duct_to_unknown_node_rejected(self, toy_map):
        with pytest.raises(RegionError):
            toy_map.add_duct("DC1", "NOPE")

    def test_duct_default_length_is_euclidean(self):
        fmap = FiberMap()
        fmap.add_dc("A", 0, 0)
        fmap.add_dc("B", 3, 4)
        fmap.add_duct("A", "B")
        assert fmap.duct_length("A", "B") == pytest.approx(5.0)

    def test_nonpositive_length_rejected(self):
        fmap = FiberMap()
        fmap.add_dc("A", 0, 0)
        fmap.add_dc("B", 1, 0)
        with pytest.raises(RegionError):
            fmap.add_duct("A", "B", length_km=0)

    def test_copy_is_independent(self, toy_map):
        clone = toy_map.copy()
        clone.remove_duct("H1", "H2")
        assert toy_map.has_duct("H1", "H2")
        assert not clone.has_duct("H1", "H2")

    def test_unknown_lookups_raise(self, toy_map):
        with pytest.raises(RegionError):
            toy_map.kind("NOPE")
        with pytest.raises(RegionError):
            toy_map.position("NOPE")
        with pytest.raises(RegionError):
            toy_map.duct_length("DC1", "DC2")


class TestPaths:
    def test_shortest_path_via_hub(self, toy_map):
        length, path = toy_map.shortest_path("DC1", "DC2")
        assert path == ["DC1", "H1", "DC2"]
        assert length == pytest.approx(20.0)

    def test_cross_pair_uses_trunk(self, toy_map):
        length, path = toy_map.shortest_path("DC1", "DC3")
        assert path == ["DC1", "H1", "H2", "DC3"]
        assert length == pytest.approx(40.0)

    def test_exclusion_disconnects(self, toy_map):
        with pytest.raises(nx.NetworkXNoPath):
            toy_map.shortest_path("DC1", "DC3", exclude_ducts=[("H1", "H2")])

    def test_path_length_matches_shortest(self, toy_map):
        length, path = toy_map.shortest_path("DC2", "DC4")
        assert toy_map.path_length(path) == pytest.approx(length)

    def test_path_ducts(self, toy_map):
        _, path = toy_map.shortest_path("DC1", "DC3")
        assert toy_map.path_ducts(path) == [
            ("DC1", "H1"),
            ("H1", "H2"),
            ("DC3", "H2"),
        ]

    def test_dc_pairs(self, toy_map):
        pairs = toy_map.dc_pairs()
        assert len(pairs) == 6
        assert all(a < b for a, b in pairs)


class TestRegionSpec:
    def test_capacity_translation(self, toy_region):
        # 10 fibers x 40 wavelengths x 400 Gbps = 160 Tbps (§3.4).
        assert toy_region.capacity_gbps("DC1") == pytest.approx(160_000)
        assert toy_region.transceivers("DC1") == 400

    def test_total_fibers(self, toy_region):
        assert toy_region.total_fibers() == 40

    def test_pair_demand_is_min(self, toy_map):
        spec = RegionSpec(
            fiber_map=toy_map,
            dc_fibers={"DC1": 4, "DC2": 8, "DC3": 8, "DC4": 8},
            constraints=OperationalConstraints(failure_tolerance=0),
        )
        assert spec.pair_demand_fibers("DC1", "DC2") == 4
        assert spec.pair_demand_fibers("DC3", "DC4") == 8

    def test_missing_dc_capacity_rejected(self, toy_map):
        with pytest.raises(RegionError, match="missing"):
            RegionSpec(fiber_map=toy_map, dc_fibers={"DC1": 10})

    def test_extra_dc_capacity_rejected(self, toy_map):
        caps = {f"DC{i}": 10 for i in range(1, 5)}
        caps["DC9"] = 10
        with pytest.raises(RegionError, match="extra"):
            RegionSpec(fiber_map=toy_map, dc_fibers=caps)

    def test_nonpositive_capacity_rejected(self, toy_map):
        caps = {f"DC{i}": 10 for i in range(1, 5)}
        caps["DC1"] = 0
        with pytest.raises(RegionError):
            RegionSpec(fiber_map=toy_map, dc_fibers=caps)

    def test_unknown_dc_raises(self, toy_region):
        with pytest.raises(RegionError):
            toy_region.fibers("DC99")


class TestOperationalConstraints:
    def test_defaults_match_paper(self):
        oc = OperationalConstraints()
        assert oc.sla_fiber_km == 120.0
        assert oc.failure_tolerance == 2
        assert oc.require_shortest_path

    def test_validation(self):
        with pytest.raises(RegionError):
            OperationalConstraints(sla_fiber_km=0)
        with pytest.raises(RegionError):
            OperationalConstraints(failure_tolerance=-1)
        with pytest.raises(RegionError):
            OperationalConstraints(max_span_km=-5)
