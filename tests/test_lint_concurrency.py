"""reprolint v4: thread-safety & resource-lifecycle rules (R015–R019).

Acceptance bar per rule: a positive fixture that must flag, a negative
fixture that must stay quiet, and for the interprocedural rules a
violation buried at call depth ≥ 2 that still flags with the chain
quoted. Plus the blessing semantics R015 adds: a ``guarded-by`` comment
suppresses exactly one access and shows up as R900 when stale.
"""

import ast

import pytest

from repro.lint import (
    extract_concurrency,
    get_rule,
    lint_project,
    lint_source,
)
from repro.lint.callgraph import analyze_syntax
from repro.lint.concurrency import canonical_lock


def only(rule_id, source, path="mod.py", **kwargs):
    return lint_source(source, path, rules=[get_rule(rule_id)], **kwargs)


def only_project(rule_id, sources):
    return lint_project(sources, rules=[get_rule(rule_id)])


# --- canonical lock names ----------------------------------------------------


def _lock_of(src, class_name=None, module="mod"):
    expr = ast.parse(src, mode="eval").body
    return canonical_lock(expr, class_name, module)


def test_canonical_lock_self_attribute_uses_class_name():
    assert _lock_of("self._lock", class_name="Service") == "Service._lock"


def test_canonical_lock_module_level_name():
    assert _lock_of("_REGISTRY_LOCK") == "mod._REGISTRY_LOCK"


def test_canonical_lock_rejects_non_lockish_names():
    assert _lock_of("self._jobs", class_name="Service") is None


def test_canonical_lock_condition_alias_counts():
    assert _lock_of("self._cv", class_name="S") == "S._cv"


# --- R015: guarded-by inference ----------------------------------------------

R015_POSITIVE = """\
import threading


class Service:
    def __init__(self):
        self._lock = threading.Lock()
        self._jobs = {}

    def start(self):
        t = threading.Thread(target=self.run, daemon=True)
        t.start()

    def run(self):
        with self._lock:
            self._jobs["a"] = 1
        with self._lock:
            self._jobs.pop("a", None)

    def peek(self):
        return len(self._jobs)
"""


def test_r015_flags_unguarded_minority_access():
    findings = only("R015", R015_POSITIVE, "svc.py")
    assert len(findings) == 1
    (finding,) = findings
    assert finding.rule_id == "R015"
    assert finding.line == 20
    assert "`self._jobs`" in finding.message
    assert "Service._lock" in finding.message
    # The guarded example sites are quoted so the reader can compare.
    assert "svc.py:15" in finding.message
    assert "guarded-by[_lock]" in finding.message


def test_r015_quiet_without_thread_spawn():
    # Same access pattern, but nothing spawns threads: single-threaded
    # classes may be lock-free wherever they like.
    src = R015_POSITIVE.replace(
        "        t = threading.Thread(target=self.run, daemon=True)\n"
        "        t.start()\n",
        "        self.run()\n",
    )
    assert only("R015", src) == []


def test_r015_quiet_when_all_accesses_guarded():
    src = R015_POSITIVE.replace(
        "        return len(self._jobs)",
        "        with self._lock:\n            return len(self._jobs)",
    )
    assert only("R015", src) == []


R015_HELPER_INHERITS = """\
import threading


class Service:
    def __init__(self):
        self._lock = threading.Lock()
        self._jobs = {}

    def start(self):
        t = threading.Thread(target=self.run, daemon=True)
        t.start()

    def run(self):
        with self._lock:
            self._evict()
        with self._lock:
            self._jobs["x"] = 1
        with self._lock:
            self._jobs["y"] = 2

    def _evict(self):
        self._jobs.clear()
"""


def test_r015_helper_called_under_lock_inherits_lockset():
    # _evict touches _jobs with no local lock, but every call site holds
    # it — the must-fixpoint credits the helper, so nothing fires.
    assert only("R015", R015_HELPER_INHERITS, "svc.py") == []


def test_r015_helper_with_one_unlocked_call_site_does_not_inherit():
    src = R015_HELPER_INHERITS + (
        "\n    def sweep(self):\n        self._evict()\n"
    )
    findings = only("R015", src, "svc.py")
    assert any("_jobs" in f.message for f in findings)


def test_r015_guarded_by_blessing_suppresses_and_tracks():
    blessed = R015_POSITIVE.replace(
        "        return len(self._jobs)",
        "        return len(self._jobs)  # repro: guarded-by[_lock]",
    )
    assert only("R015", blessed, "svc.py") == []
    # A blessing that blesses nothing is an unused suppression (R900).
    stale = R015_POSITIVE.replace(
        "        with self._lock:\n            self._jobs.pop(\"a\", None)",
        "        with self._lock:\n"
        "            self._jobs.pop(\"a\", None)  # repro: guarded-by[_lock]",
    )
    findings = lint_source(stale, "svc.py", report_unused_noqa=True)
    r900 = [f for f in findings if f.rule_id == "R900"]
    assert len(r900) == 1
    assert "guarded-by[_lock]" in r900[0].message


def test_r015_plain_noqa_also_suppresses():
    blessed = R015_POSITIVE.replace(
        "        return len(self._jobs)",
        "        return len(self._jobs)  # repro: noqa-R015",
    )
    assert only("R015", blessed, "svc.py") == []


# --- R016: blocking under lock -----------------------------------------------

R016_DIRECT = """\
import queue
import threading


class S:
    def __init__(self):
        self._lock = threading.Lock()
        self._queue = queue.Queue()

    def pump(self):
        with self._lock:
            item = self._queue.get()
        return item
"""


def test_r016_direct_blocking_call_under_lock():
    findings = only("R016", R016_DIRECT)
    assert len(findings) == 1
    assert "Queue.get" in findings[0].message
    assert "S._lock" in findings[0].message


def test_r016_nonblocking_queue_get_is_fine():
    src = R016_DIRECT.replace(
        "self._queue.get()", "self._queue.get(block=False)"
    )
    assert only("R016", src) == []


def test_r016_blocking_call_outside_lock_is_fine():
    src = R016_DIRECT.replace(
        "        with self._lock:\n            item = self._queue.get()",
        "        with self._lock:\n            pass\n"
        "        item = self._queue.get()",
    )
    assert only("R016", src) == []


R016_DEEP = """\
import queue
import threading


class S:
    def __init__(self):
        self._lock = threading.Lock()
        self._queue = queue.Queue()

    def entry(self):
        with self._lock:
            self._h1()

    def _h1(self):
        self._h2()

    def _h2(self):
        self._queue.get()
"""


def test_r016_transitive_blocking_at_depth_two_quotes_chain():
    findings = only("R016", R016_DEEP, "s.py")
    assert len(findings) == 1
    message = findings[0].message
    assert "self._h1" in message
    assert "via `self._h2()`" in message
    assert "Queue.get at s.py:18" in message


def test_r016_event_wait_and_thread_join_block():
    src = """\
import threading


class S:
    def __init__(self):
        self._lock = threading.Lock()
        self._done = threading.Event()
        self._worker = threading.Thread(target=print, daemon=True)

    def bad_wait(self):
        with self._lock:
            self._done.wait()

    def bad_join(self):
        with self._lock:
            self._worker.join()
"""
    findings = only("R016", src)
    assert len(findings) == 2


def test_r016_planner_entry_point_counts_as_blocking():
    src = """\
import threading

from repro.core.planner import plan_region

_CACHE_LOCK = threading.Lock()


def cached_plan(region):
    with _CACHE_LOCK:
        return plan_region(region)
"""
    findings = only("R016", src)
    assert len(findings) == 1
    assert "plan_region" in findings[0].message


# --- R017: lock-order cycles -------------------------------------------------

R017_DIRECT = """\
import threading

LOCK_A = threading.Lock()
LOCK_B = threading.Lock()


def ab():
    with LOCK_A:
        with LOCK_B:
            pass


def ba():
    with LOCK_B:
        with LOCK_A:
            pass
"""


def test_r017_direct_nested_cycle_reports_both_directions():
    findings = only("R017", R017_DIRECT, "l.py")
    assert len(findings) == 1
    message = findings[0].message
    assert "LOCK_A" in message and "LOCK_B" in message
    assert "→" in message
    # Both acquisition chains are quoted.
    assert message.count("acquired at") >= 2


def test_r017_consistent_order_is_quiet():
    src = R017_DIRECT.replace(
        "    with LOCK_B:\n        with LOCK_A:",
        "    with LOCK_A:\n        with LOCK_B:",
    )
    assert only("R017", src) == []


R017_DEEP = """\
import threading

LOCK_A = threading.Lock()
LOCK_B = threading.Lock()


def f():
    with LOCK_A:
        mid_b()


def mid_b():
    take_b()


def take_b():
    with LOCK_B:
        pass


def g():
    with LOCK_B:
        mid_a()


def mid_a():
    take_a()


def take_a():
    with LOCK_A:
        pass
"""


def test_r017_cycle_through_depth_two_calls():
    findings = only("R017", R017_DEEP, "l.py")
    assert len(findings) == 1
    message = findings[0].message
    assert "via `mid_b()`" in message
    assert "via `mid_a()`" in message


def test_r017_nonreentrant_self_deadlock_via_helper():
    src = """\
import threading


class S:
    def __init__(self):
        self._lock = threading.Lock()

    def outer(self):
        with self._lock:
            self._inner()

    def _inner(self):
        with self._lock:
            pass
"""
    findings = only("R017", src)
    assert findings
    assert all("re-acquired" in f.message for f in findings)


def test_r017_rlock_reentry_is_fine():
    src = """\
import threading


class S:
    def __init__(self):
        self._lock = threading.RLock()

    def outer(self):
        with self._lock:
            self._inner()

    def _inner(self):
        with self._lock:
            pass
"""
    assert only("R017", src) == []


def test_r017_cross_file_cycle():
    a = """\
import threading

LOCK_A = threading.Lock()


def with_a(fn):
    with LOCK_A:
        fn()
"""
    b = """\
import threading

from a import LOCK_A, with_a

LOCK_B = threading.Lock()


def grab_both():
    with LOCK_B:
        with LOCK_A:
            pass


def other_way():
    with LOCK_A:
        with LOCK_B:
            pass
"""
    findings = only_project("R017", [("a.py", a), ("b.py", b)])
    assert len(findings) == 1


# --- R018: resource lifecycle ------------------------------------------------


def test_r018_never_released_socket():
    src = """\
import socket


def probe(host):
    s = socket.create_connection((host, 80))
    s.sendall(b"x")
"""
    findings = only("R018", src)
    assert len(findings) == 1
    assert "never released" in findings[0].message


def test_r018_release_only_on_normal_path():
    src = """\
import socket


def probe(host):
    s = socket.create_connection((host, 80))
    s.sendall(b"x")
    s.close()
"""
    findings = only("R018", src)
    assert len(findings) == 1
    assert "leaks if line 6 raises" in findings[0].message


@pytest.mark.parametrize(
    "body",
    [
        # with-statement ownership
        "    with socket.create_connection((host, 80)) as s:\n"
        "        s.sendall(b'x')\n",
        # try/finally release
        "    s = socket.create_connection((host, 80))\n"
        "    try:\n"
        "        s.sendall(b'x')\n"
        "    finally:\n"
        "        s.close()\n",
        # returned to the caller: ownership transfers
        "    s = socket.create_connection((host, 80))\n"
        "    return s\n",
    ],
)
def test_r018_safe_shapes_are_quiet(body):
    src = "import socket\n\n\ndef probe(host):\n" + body
    assert only("R018", src) == []


def test_r018_interprocedural_acquisition_depth_two():
    # The acquisition hides two calls deep: _fresh() returns _connect()'s
    # socket; the caller owns it and never closes it.
    src = """\
import socket


def _connect(host):
    return socket.create_connection((host, 80))


def _fresh(host):
    return _connect(host)


def probe(host):
    s = _fresh(host)
    s.sendall(b"x")
"""
    findings = only("R018", src)
    assert len(findings) == 1
    assert findings[0].line == 13


def test_r018_self_stored_without_class_release():
    src = """\
import socket


class Probe:
    def __init__(self, host):
        self._sock = socket.create_connection((host, 80))
"""
    findings = only("R018", src)
    assert len(findings) == 1
    assert "no method of `Probe` releases" in findings[0].message


def test_r018_self_stored_with_close_method_is_quiet():
    src = """\
import socket


class Probe:
    def __init__(self, host):
        self._sock = socket.create_connection((host, 80))

    def close(self):
        self._sock.close()
"""
    assert only("R018", src) == []


def test_r018_half_open_init_flags_risky_tail():
    # The client bug shape: the store succeeds, a later __init__ line can
    # raise, the instance is never handed out, close() is unreachable.
    src = """\
import socket


class Probe:
    def __init__(self, host):
        self._sock = socket.create_connection((host, 80))
        self._stream = self._sock.makefile("rb")

    def close(self):
        self._sock.close()
        self._stream.close()
"""
    findings = only("R018", src)
    assert len(findings) == 1
    assert "half" in findings[0].message or "__init__" in findings[0].message


def test_r018_half_open_init_quiet_when_guarded():
    src = """\
import socket


class Probe:
    def __init__(self, host):
        self._sock = socket.create_connection((host, 80))
        try:
            self._stream = self._sock.makefile("rb")
        except OSError:
            self._sock.close()
            raise

    def close(self):
        self._sock.close()
        self._stream.close()
"""
    assert only("R018", src) == []


def test_r018_alias_release_pattern_is_recognized():
    # The daemon's close() shape: detach to a local, then close the local.
    src = """\
import socket


class Probe:
    def __init__(self, host):
        self._sock = socket.create_connection((host, 80))

    def close(self):
        sock = self._sock
        sock.close()
"""
    assert only("R018", src) == []


def test_r018_pool_backend_requires_terminate():
    src = """\
from repro.core.engine import ProcessBackend


def sweep(chunks):
    backend = ProcessBackend(jobs=2)
    return list(backend.iter_chunks(print, None, chunks))
"""
    findings = only("R018", src)
    assert len(findings) == 1
    assert "worker pool" in findings[0].message


# --- R019: thread discipline -------------------------------------------------


def test_r019_unjoined_non_daemon_thread():
    src = """\
import threading


def fire():
    t = threading.Thread(target=print)
    t.start()
"""
    findings = only("R019", src)
    assert len(findings) == 1
    assert "daemon" in findings[0].message


@pytest.mark.parametrize(
    "body",
    [
        # explicit daemon decision
        "    t = threading.Thread(target=print, daemon=True)\n"
        "    t.start()\n",
        # joined directly
        "    t = threading.Thread(target=print)\n"
        "    t.start()\n"
        "    t.join()\n",
        # list comprehension joined in a loop (the test-suite shape)
        "    ts = [threading.Thread(target=print) for _ in range(3)]\n"
        "    for t in ts:\n"
        "        t.start()\n"
        "    for t in ts:\n"
        "        t.join()\n",
    ],
)
def test_r019_daemon_or_joined_shapes_are_quiet(body):
    src = "import threading\n\n\ndef fire():\n" + body
    assert only("R019", src) == []


def test_r019_wait_without_timeout_in_worker_loop():
    src = """\
import threading


def worker(event, should_stop):
    while not should_stop():
        event.wait()
"""
    findings = only("R019", src)
    assert len(findings) == 1
    assert "timeout" in findings[0].message


def test_r019_wait_with_timeout_is_quiet():
    src = """\
import threading


def worker(event, should_stop):
    while not should_stop():
        event.wait(timeout=0.5)
"""
    assert only("R019", src) == []


def test_r019_wait_outside_loop_is_quiet():
    src = """\
def once(event):
    event.wait()
"""
    assert only("R019", src) == []


# --- per-file facts: extraction + cache round-trip ---------------------------


def _facts(source, path="m.py"):
    tree = ast.parse(source)
    return extract_concurrency(tree, analyze_syntax(tree, path))


def test_extraction_records_acquires_and_guarded_accesses():
    facts = _facts(R015_POSITIVE, "svc.py")
    run = facts.functions["Service.run"]
    assert [lock for lock, _ in run.acquires] == [
        "Service._lock",
        "Service._lock",
    ]
    attrs = {(a, locks) for a, _l, _c, locks, _k in run.accesses}
    assert ("_jobs", ("Service._lock",)) in attrs
    peek = facts.functions["Service.peek"]
    assert peek.accesses[0][3] == ()  # unguarded
    assert facts.functions["Service.start"].spawns_thread


def test_extraction_survives_dict_round_trip():
    from repro.lint.concurrency import FileConcurrency

    facts = _facts(R016_DEEP, "s.py")
    clone = FileConcurrency.from_dict(facts.to_dict())
    assert clone.to_dict() == facts.to_dict()
    assert clone.functions.keys() == facts.functions.keys()
    assert clone.lock_kinds == facts.lock_kinds


def test_lock_kind_extraction_distinguishes_rlock():
    src = """\
import threading


class S:
    def __init__(self):
        self._lock = threading.RLock()


_REGISTRY_LOCK = threading.Lock()
"""
    facts = _facts(src, "m.py")
    assert facts.lock_kinds["S._lock"] == "rlock"
    assert facts.lock_kinds["m._REGISTRY_LOCK"] == "lock"
