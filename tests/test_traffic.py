"""Traffic matrices and their evolution (§6.3)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import SimulationError
from repro.simulation.traffic import (
    TrafficMatrix,
    heavy_tailed_matrix,
    perturb_matrix,
)

DCS = [f"DC{i}" for i in range(1, 7)]


class TestTrafficMatrix:
    def test_normalization_enforced(self):
        with pytest.raises(SimulationError):
            TrafficMatrix(weights={("A", "B"): 0.5})

    def test_negative_weight_rejected(self):
        with pytest.raises(SimulationError):
            TrafficMatrix(weights={("A", "B"): 1.5, ("A", "C"): -0.5})

    def test_dc_load_share(self):
        tm = TrafficMatrix(
            weights={("A", "B"): 0.6, ("A", "C"): 0.3, ("B", "C"): 0.1}
        )
        assert tm.dc_load_share("A") == pytest.approx(0.9)
        assert tm.dc_load_share("C") == pytest.approx(0.4)


class TestHeavyTailed:
    def test_covers_all_pairs(self):
        tm = heavy_tailed_matrix(DCS, random.Random(1))
        assert len(tm.weights) == 15
        assert sum(tm.weights.values()) == pytest.approx(1.0)

    def test_few_pairs_carry_most_traffic(self):
        # §6.3: "a few pairs exchanging most of the traffic".
        tm = heavy_tailed_matrix(DCS, random.Random(1))
        assert tm.top_heavy_fraction(3) > 0.4

    def test_hot_pairs_differ_across_seeds(self):
        def hottest(seed):
            tm = heavy_tailed_matrix(DCS, random.Random(seed))
            return max(tm.weights, key=tm.weights.get)

        assert len({hottest(s) for s in range(10)}) > 1

    def test_needs_two_dcs(self):
        with pytest.raises(SimulationError):
            heavy_tailed_matrix(["A"], random.Random(1))


class TestPerturb:
    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_bounded_changes_are_bounded(self, seed):
        rng = random.Random(seed)
        tm = heavy_tailed_matrix(DCS, rng)
        new = perturb_matrix(tm, rng, max_change=0.10)
        # Each weight moved at most ~10% before renormalization; after
        # renormalization the ratio stays within a slightly wider band.
        for pair in tm.weights:
            ratio = new.weights[pair] / tm.weights[pair]
            assert 0.75 <= ratio <= 1.30

    def test_zero_change_is_identity_up_to_normalization(self):
        rng = random.Random(3)
        tm = heavy_tailed_matrix(DCS, rng)
        new = perturb_matrix(tm, rng, max_change=0.0)
        for pair in tm.weights:
            assert new.weights[pair] == pytest.approx(tm.weights[pair])

    def test_unbounded_swaps_hot_and_cold(self):
        rng = random.Random(3)
        tm = heavy_tailed_matrix(DCS, rng)
        hot_before = max(tm.weights, key=tm.weights.get)
        new = perturb_matrix(tm, rng, max_change=None)
        # The formerly hottest pair is no longer the hottest.
        assert max(new.weights, key=new.weights.get) != hot_before

    def test_stays_normalized(self):
        rng = random.Random(9)
        tm = heavy_tailed_matrix(DCS, rng)
        for _ in range(5):
            tm = perturb_matrix(tm, rng, max_change=None)
            assert sum(tm.weights.values()) == pytest.approx(1.0)

    def test_negative_bound_rejected(self):
        rng = random.Random(1)
        tm = heavy_tailed_matrix(DCS, rng)
        with pytest.raises(SimulationError):
            perturb_matrix(tm, rng, max_change=-0.1)
