"""Traffic matrices and their evolution (§6.3)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import SimulationError
from repro.simulation.traffic import (
    TrafficMatrix,
    _normalized,
    heavy_tailed_matrix,
    perturb_matrix,
    sample_ensemble,
)

DCS = [f"DC{i}" for i in range(1, 7)]

# A seeded heavy-tailed matrix, as a hypothesis building block.
matrices = st.integers(min_value=0, max_value=5000).map(
    lambda seed: heavy_tailed_matrix(DCS, random.Random(seed))
)


class TestTrafficMatrix:
    def test_normalization_enforced(self):
        with pytest.raises(SimulationError):
            TrafficMatrix(weights={("A", "B"): 0.5})

    def test_negative_weight_rejected(self):
        with pytest.raises(SimulationError):
            TrafficMatrix(weights={("A", "B"): 1.5, ("A", "C"): -0.5})

    def test_dc_load_share(self):
        tm = TrafficMatrix(
            weights={("A", "B"): 0.6, ("A", "C"): 0.3, ("B", "C"): 0.1}
        )
        assert tm.dc_load_share("A") == pytest.approx(0.9)
        assert tm.dc_load_share("C") == pytest.approx(0.4)


class TestMatrixInvariants:
    """Hypothesis property suite for the TrafficMatrix contracts."""

    @given(tm=matrices)
    @settings(max_examples=40, deadline=None)
    def test_normalization_fixpoint(self, tm):
        # Normalizing an already-normalized matrix changes nothing.
        renorm = _normalized(tm.weights)
        for pair, w in tm.weights.items():
            assert renorm.weights[pair] == pytest.approx(w, rel=1e-12)

    @given(tm=matrices)
    @settings(max_examples=40, deadline=None)
    def test_dc_load_shares_sum_to_two(self, tm):
        # Every unit of pair traffic touches exactly two DCs.
        assert sum(tm.dc_load_share(dc) for dc in DCS) == pytest.approx(2.0)

    @given(tm=matrices, k=st.integers(min_value=0, max_value=20))
    @settings(max_examples=40, deadline=None)
    def test_top_heavy_fraction_monotone_and_bounded(self, tm, k):
        frac = tm.top_heavy_fraction(k)
        assert 0.0 <= frac <= 1.0 + 1e-9
        assert tm.top_heavy_fraction(k + 1) >= frac - 1e-12
        assert tm.top_heavy_fraction(len(tm.weights)) == pytest.approx(1.0)

    @given(
        tm=matrices,
        seed=st.integers(min_value=0, max_value=1000),
        # Bounded changes are fractions of the current weight: above 1.0
        # the multiplicative factor can go negative, which the matrix
        # constructor rightly rejects.
        bound=st.one_of(st.none(), st.floats(min_value=0.0, max_value=1.0)),
    )
    @settings(max_examples=40, deadline=None)
    def test_mutations_preserve_sum_to_one(self, tm, seed, bound):
        # Evolve-style mutation keeps the normalization contract.
        new = perturb_matrix(tm, random.Random(seed), max_change=bound)
        assert sum(new.weights.values()) == pytest.approx(1.0)
        assert set(new.weights) == set(tm.weights)

    @given(tm=matrices)
    @settings(max_examples=30, deadline=None)
    def test_relabel_is_weight_preserving(self, tm):
        mapping = {dc: dc.replace("DC", "Z") for dc in DCS}
        relabeled = tm.relabel(mapping)
        assert sorted(relabeled.weights.values()) == sorted(
            tm.weights.values()
        )
        for (a, b), w in tm.weights.items():
            key = tuple(sorted((mapping[a], mapping[b])))
            assert relabeled.weights[key] == w

    def test_relabel_rejects_collisions(self):
        tm = heavy_tailed_matrix(DCS, random.Random(1))
        with pytest.raises(SimulationError):
            tm.relabel({dc: "SAME" for dc in DCS})


class TestSampleEnsemble:
    def test_count_and_normalization(self):
        ens = sample_ensemble(DCS, random.Random(4), count=6)
        assert len(ens) == 6
        for tm in ens:
            assert sum(tm.weights.values()) == pytest.approx(1.0)

    def test_deterministic_in_the_rng(self):
        a = sample_ensemble(DCS, random.Random(8), count=4)
        b = sample_ensemble(DCS, random.Random(8), count=4)
        assert [tm.weights for tm in a] == [tm.weights for tm in b]

    def test_zero_count_rejected(self):
        with pytest.raises(SimulationError):
            sample_ensemble(DCS, random.Random(1), count=0)


class TestHeavyTailed:
    def test_covers_all_pairs(self):
        tm = heavy_tailed_matrix(DCS, random.Random(1))
        assert len(tm.weights) == 15
        assert sum(tm.weights.values()) == pytest.approx(1.0)

    def test_few_pairs_carry_most_traffic(self):
        # §6.3: "a few pairs exchanging most of the traffic".
        tm = heavy_tailed_matrix(DCS, random.Random(1))
        assert tm.top_heavy_fraction(3) > 0.4

    def test_hot_pairs_differ_across_seeds(self):
        def hottest(seed):
            tm = heavy_tailed_matrix(DCS, random.Random(seed))
            return max(tm.weights, key=tm.weights.get)

        assert len({hottest(s) for s in range(10)}) > 1

    def test_needs_two_dcs(self):
        with pytest.raises(SimulationError):
            heavy_tailed_matrix(["A"], random.Random(1))


class TestPerturb:
    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_bounded_changes_are_bounded(self, seed):
        rng = random.Random(seed)
        tm = heavy_tailed_matrix(DCS, rng)
        new = perturb_matrix(tm, rng, max_change=0.10)
        # Each weight moved at most ~10% before renormalization; after
        # renormalization the ratio stays within a slightly wider band.
        for pair in tm.weights:
            ratio = new.weights[pair] / tm.weights[pair]
            assert 0.75 <= ratio <= 1.30

    def test_zero_change_is_identity_up_to_normalization(self):
        rng = random.Random(3)
        tm = heavy_tailed_matrix(DCS, rng)
        new = perturb_matrix(tm, rng, max_change=0.0)
        for pair in tm.weights:
            assert new.weights[pair] == pytest.approx(tm.weights[pair])

    def test_unbounded_swaps_hot_and_cold(self):
        rng = random.Random(3)
        tm = heavy_tailed_matrix(DCS, rng)
        hot_before = max(tm.weights, key=tm.weights.get)
        new = perturb_matrix(tm, rng, max_change=None)
        # The formerly hottest pair is no longer the hottest.
        assert max(new.weights, key=new.weights.get) != hot_before

    def test_stays_normalized(self):
        rng = random.Random(9)
        tm = heavy_tailed_matrix(DCS, rng)
        for _ in range(5):
            tm = perturb_matrix(tm, rng, max_change=None)
            assert sum(tm.weights.values()) == pytest.approx(1.0)

    def test_negative_bound_rejected(self):
        rng = random.Random(1)
        tm = heavy_tailed_matrix(DCS, rng)
        with pytest.raises(SimulationError):
            perturb_matrix(tm, rng, max_change=-0.1)
