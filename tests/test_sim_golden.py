"""Golden regression pins for the Fig 17/18 simulation outputs.

These pin the *exact* flow counts and reconfiguration counts (integers)
and the p99 slowdowns (floats, to 1e-9) of fixed-seed scenarios, one per
traffic backend:

* the historical per-pair **poisson** backend — these pins prove the new
  generator landed without perturbing the legacy flow traces;
* the new **flowgen** backend — pinned separately, so its streams are
  locked from their first release.

Update a pin only for a deliberate change to the traffic model, never to
"fix" a drifting test — drift here means a reproducibility regression.
"""

from dataclasses import replace

import pytest

from repro.simulation.scenarios import (
    ScenarioConfig,
    run_comparison,
    run_robust_comparison,
)

FIG17 = ScenarioConfig(
    n_dcs=5,
    duration_s=12.0,
    change_interval_s=4.0,
    utilization=0.6,
    seed=17,
)

FIG18 = ScenarioConfig(
    n_dcs=6,
    workload="hadoop",
    duration_s=12.0,
    change_interval_s=4.0,
    utilization=0.6,
    seed=18,
)


class TestFig17Pins:
    def test_poisson_backend_unchanged(self):
        r = run_comparison(FIG17)
        assert r.summary.iris_flows == 4662
        assert r.reconfigurations == 1
        assert r.fibers_moved == 1
        assert r.summary.p99_all == pytest.approx(
            1.0041157833389704, rel=1e-9
        )
        assert r.summary.p50_all == pytest.approx(1.0, rel=1e-9)

    def test_flowgen_backend_pinned(self):
        r = run_comparison(
            replace(FIG17, traffic_backend="flowgen", interarrival="bursty")
        )
        assert r.summary.iris_flows == 4287
        assert r.reconfigurations == 1
        assert r.fibers_moved == 1
        assert r.summary.p99_all == pytest.approx(
            1.0024081463873948, rel=1e-9
        )

    def test_backends_share_the_tm_timeline(self):
        # Same seed, different backend: the reconfiguration schedule
        # (driven by the TM timeline, not the flows) is identical.
        a = run_comparison(FIG17)
        b = run_comparison(replace(FIG17, traffic_backend="flowgen"))
        assert a.reconfigurations == b.reconfigurations
        assert a.fibers_moved == b.fibers_moved


@pytest.mark.statistical
class TestFig18Pins:
    def test_poisson_backend_unchanged(self):
        r = run_comparison(FIG18)
        assert r.summary.iris_flows == 9162
        assert r.reconfigurations == 2
        assert r.summary.p99_all == pytest.approx(
            1.0034812917218723, rel=1e-9
        )

    def test_flowgen_backend_pinned(self):
        r = run_comparison(replace(FIG18, traffic_backend="flowgen"))
        assert r.summary.iris_flows == 5946
        assert r.reconfigurations == 2
        assert r.summary.p99_all == pytest.approx(1.0, rel=1e-9)


@pytest.mark.statistical
class TestRobustStaticPin:
    def test_robust_static_fabric_pinned(self):
        import random

        from repro.simulation.traffic import sample_ensemble

        ensemble = sample_ensemble(FIG17.dcs, random.Random(99), count=5)
        r = run_robust_comparison(FIG17, ensemble)
        # Same flow trace as the iris run (identical seed and backend)...
        assert r.summary.iris_flows == 4662
        # ...but a static fabric: no reconfigurations by construction.
        assert r.reconfigurations == 0
        assert r.fibers_moved == 0
        assert r.summary.p99_all == pytest.approx(
            1.0419296852529165, rel=1e-9
        )
