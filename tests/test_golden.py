"""Golden regression values for a fully-planned catalog region.

The planner, generator, and cost model are all deterministic (seeded); this
module pins one region's end-to-end outputs so that unintended behavioural
changes — a different greedy tie-break, a generator tweak, a price edit —
show up as a diff here rather than as silent drift in the benchmarks.
Update the constants deliberately when a change is intentional.
"""

import pytest

from repro import obs
from repro.core.hose import clear_hose_cache
from repro.core.planner import plan_region
from repro.cost.estimator import estimate_cost
from repro.designs.eps import eps_inventory
from repro.region.catalog import make_region


@pytest.fixture(scope="module")
def golden_plan():
    instance = make_region(map_index=0, n_dcs=5, dc_fibers=8)
    return instance.spec, plan_region(instance.spec)


class TestGoldenRegion:
    def test_topology_provisioning(self, golden_plan):
        _, plan = golden_plan
        assert plan.topology.total_fiber_pairs() == 528
        assert plan.residual_fiber_pairs() == 40
        assert len(plan.topology.scenario_paths) == 217
        assert plan.topology.scenario_count_total == 2017

    def test_optical_realization(self, golden_plan):
        _, plan = golden_plan
        assert plan.amplifiers.total_amplifiers == 72
        assert plan.cut_throughs == ()
        assert plan.validate() == []

    def test_costs(self, golden_plan):
        region, plan = golden_plan
        iris = estimate_cost(plan.inventory())
        eps = estimate_cost(eps_inventory(region, plan.topology))
        assert iris.total == pytest.approx(5_444_000)
        assert eps.total / iris.total == pytest.approx(11.48, abs=0.02)

    def test_inventory_detail(self, golden_plan):
        _, plan = golden_plan
        inv = plan.inventory()
        assert inv.dc_transceivers == 5 * 8 * 40
        assert inv.fiber_pair_spans == 568  # 528 base + 40 residual
        assert inv.oss_ports == 4 * 568 + 2 * 72


class TestGoldenObservability:
    """Pinned observability counts for the same region at jobs=1.

    The work metrics are as deterministic as the plan itself — a change
    here means the planner is *doing* different work (extra hose
    evaluations, a different enumeration), even if the plan output is
    unchanged. The cache hit/miss split is pinned from a cold per-process
    cache, hence the explicit ``clear_hose_cache``.
    """

    @pytest.fixture(scope="class")
    def traced_plan(self):
        instance = make_region(map_index=0, n_dcs=5, dc_fibers=8)
        clear_hose_cache()
        with obs.tracing("golden") as tracer:
            plan = plan_region(instance.spec, jobs=1)
        return plan, tracer.record()

    def test_timings_view(self, traced_plan):
        plan, _ = traced_plan
        timings = plan.topology.timings
        assert timings.scenarios_evaluated == 217
        assert timings.hose_cache_hits == 4355  # capacity phase, cold cache
        assert timings.hose_cache_misses == 78
        # Every capacity-phase miss is repaired from a solved neighbour
        # except the handful of genuinely novel flow graphs.
        assert timings.hose_cold_solves == 7
        assert timings.hose_incremental_solves == 71

    def test_trace_work_totals(self, traced_plan):
        _, record = traced_plan
        assert record.total("paths.scenarios") == 217
        assert record.total("scenarios.evaluated") == 217
        assert record.total("hose.lookups") == 15762  # enumerate + capacity

    def test_incremental_solve_totals(self, traced_plan):
        """ISSUE 6 acceptance: >= 5x fewer cold solves than the 92
        all-cold misses the pre-incremental planner performed."""
        _, record = traced_plan
        cold = record.total("hose.solve_cold")
        incremental = record.total("hose.solve_incremental")
        assert cold == 7
        assert incremental == 85
        assert cold + incremental == 92  # the pinned miss total
        assert cold * 5 <= 92

    def test_flow_value_distribution(self, traced_plan):
        _, record = traced_plan
        assert record.counter_totals("hose.flow.") == {
            "hose.flow.fibers[le_8]": 15386,
            "hose.flow.fibers[le_16]": 375,
            "hose.flow.fibers[le_32]": 1,
        }

    def test_span_taxonomy_present(self, traced_plan):
        _, record = traced_plan
        names = {rec.name for rec in record.walk()}
        assert {
            "plan.topology", "plan.prune", "plan.enumerate", "plan.capacity",
            "plan.amplifiers", "plan.cutthrough", "plan.residual",
            "plan.validate",
        } <= names
