"""Cut-through link placement and the EffectivePath machinery."""

import pytest

from repro.core.cutthrough import place_cut_throughs
from repro.core.failures import Scenario
from repro.core.plan import EffectivePath
from repro.core.topology import plan_topology
from repro.exceptions import PlanningError
from repro.region.fibermap import FiberMap

from tests.test_amplifiers import line_region


class TestEffectivePath:
    def make(self):
        fmap = FiberMap()
        fmap.add_dc("A", 0, 0)
        for i, x in enumerate((10, 20, 30, 40)):
            fmap.add_hut(f"M{i}", x, 0)
        fmap.add_dc("B", 50, 0)
        chain = ["A", "M0", "M1", "M2", "M3", "B"]
        for u, v in zip(chain, chain[1:]):
            fmap.add_duct(u, v, length_km=10.0)
        return fmap, chain

    def test_from_path(self):
        fmap, chain = self.make()
        path = EffectivePath.from_path(fmap, chain)
        assert path.total_km == pytest.approx(50.0)
        assert path.endpoints == ("A", "B")
        assert path.profile().oss_traversals == 6

    def test_bypass_merges_hops(self):
        fmap, chain = self.make()
        path = EffectivePath.from_path(fmap, chain)
        bypassed = path.bypass(1, 4)  # M0 .. M3 become one hop
        assert bypassed.nodes == ("A", "M0", "M3", "B")
        assert bypassed.total_km == pytest.approx(50.0)
        assert bypassed.hop_chains[1] == ("M0", "M1", "M2", "M3")
        assert bypassed.profile().oss_traversals == 4

    def test_bypass_cannot_cross_amp(self):
        fmap, chain = self.make()
        path = EffectivePath.from_path(fmap, chain).with_amp("M1")
        with pytest.raises(PlanningError):
            path.bypass(1, 4)

    def test_bypass_validation(self):
        fmap, chain = self.make()
        path = EffectivePath.from_path(fmap, chain)
        with pytest.raises(PlanningError):
            path.bypass(2, 3)  # adjacent nodes: nothing to bypass
        with pytest.raises(PlanningError):
            path.bypass(3, 1)

    def test_find_subchain(self):
        fmap, chain = self.make()
        path = EffectivePath.from_path(fmap, chain)
        assert path.find_subchain(("M0", "M1", "M2")) == (1, 3)
        assert path.find_subchain(("M2", "M1", "M0")) == (1, 3)
        assert path.find_subchain(("M0", "M2")) is None

    def test_amp_index(self):
        fmap, chain = self.make()
        path = EffectivePath.from_path(fmap, chain).with_amp("M2")
        assert path.amp_index() == 2
        assert path.profile().inline_amp_after_span == 2


class TestPlacement:
    def test_no_violations_no_links(self):
        region = line_region(30.0, 30.0)
        topology = plan_topology(region)
        effective = {
            (Scenario(), pair): EffectivePath.from_path(region.fiber_map, path)
            for pair, path in topology.base_paths.items()
        }
        links, updated, amps = place_cut_throughs(region, effective)
        assert links == ()
        assert updated == effective
        assert amps.total_amplifiers == 0

    def test_hop_overload_resolved(self):
        # 7 x 10 km: 70 km fiber, 8 switching points -> run loss 29.5 dB.
        region = line_region(*([10.0] * 7))
        topology = plan_topology(region)
        effective = {
            (Scenario(), pair): EffectivePath.from_path(region.fiber_map, path)
            for pair, path in topology.base_paths.items()
        }
        links, updated, amps = place_cut_throughs(region, effective)
        # Something was placed, and the path is now compliant.
        assert links or amps.total_amplifiers > 0
        from repro.optics.constraints import violations

        for path in updated.values():
            assert violations(path.profile()) == []

    def test_cut_through_capacity_is_hose(self):
        # Force cut-throughs by disallowing amp help: a path that one amp
        # cannot fix (too many OSSes on both halves).
        region = line_region(*([5.0] * 14))
        topology = plan_topology(region)
        effective = {
            (Scenario(), pair): EffectivePath.from_path(region.fiber_map, path)
            for pair, path in topology.base_paths.items()
        }
        links, updated, amps = place_cut_throughs(region, effective)
        for link in links:
            assert link.fiber_pairs == 4  # pair demand min(4, 4)
            assert link.spans == len(link.via) - 1
