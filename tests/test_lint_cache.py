"""reprolint v3 incremental cache: store keying, invalidation, parity.

The cache contract that makes warm CI lint near-instant without ever
serving stale analysis: per-file phase-1 facts and per-file findings are
keyed by source digest + rule-set version, findings additionally by the
digests of the file's *dependency cone* (call-graph-aware). A warm run
over an unchanged tree hits for every file and writes nothing; editing
a leaf helper invalidates its callers' findings even though their own
sources are untouched.
"""

import pytest

from repro.lint import get_rule, lint_paths, lint_project
from repro.store import PlanStore

HELPER = """\
import random


def scramble(items):
    random.shuffle(items)
    return items
"""

CALLER = """\
from pkg.util import scramble


def plan(items):
    return scramble(items)
"""

BYSTANDER = """\
def double(x):
    return 2 * x
"""

PROJECT = [
    ("pkg/util.py", HELPER),
    ("pkg/app.py", CALLER),
    ("pkg/other.py", BYSTANDER),
]


@pytest.fixture
def store(tmp_path):
    return PlanStore(tmp_path)


def deltas(store, fn):
    """(hits, misses, puts) deltas across one call of ``fn``."""
    before = (store.hits, store.misses, store.puts)
    result = fn()
    return result, (
        store.hits - before[0],
        store.misses - before[1],
        store.puts - before[2],
    )


class TestWarmRunContract:
    def test_warm_run_hits_every_file_and_writes_nothing(self, store):
        cold, (_, cold_misses, cold_puts) = deltas(
            store, lambda: lint_project(PROJECT, store=store)
        )
        # Cold: every file misses twice (phase-1 facts + findings) and
        # writes both entries back.
        assert cold_misses == 2 * len(PROJECT)
        assert cold_puts == 2 * len(PROJECT)

        warm, (warm_hits, warm_misses, warm_puts) = deltas(
            store, lambda: lint_project(PROJECT, store=store)
        )
        assert warm == cold
        assert warm_hits == 2 * len(PROJECT)
        assert warm_misses == 0
        assert warm_puts == 0

    def test_cached_findings_keep_their_fixes(self, store):
        sources = [("pkg/mod.py", "out = list(set(items))\n")]
        rules = [get_rule("R004")]
        cold = lint_project(sources, rules=rules, store=store)
        warm = lint_project(sources, rules=rules, store=store)
        assert warm == cold
        # Finding equality ignores the fix payload, so check it directly:
        # a warm run must reproduce the autofix edit byte for byte.
        assert cold[0].fix is not None
        assert warm[0].fix == cold[0].fix

    def test_storeless_and_cached_findings_agree(self, store):
        assert lint_project(PROJECT, store=store) == lint_project(PROJECT)


class TestInvalidation:
    def test_comment_only_edit_does_not_invalidate_callers(self, store):
        first = lint_project(PROJECT, store=store)

        # A comment-only edit changes pkg/util.py's source digest but
        # not its *influence* digest (summaries + propagated effects),
        # which is what its callers' findings entries are keyed on. So
        # util recomputes (phase-1 + findings) while app and the
        # bystander stay fully cached.
        edited = [
            ("pkg/util.py", HELPER + "\n# tuning notes\n"),
            ("pkg/app.py", CALLER),
            ("pkg/other.py", BYSTANDER),
        ]
        warm, (_, misses, _) = deltas(
            store, lambda: lint_project(edited, store=store)
        )
        assert misses == 2
        assert {f.path for f in warm} == {f.path for f in first}

    def test_semantic_change_updates_caller_findings(self, store):
        first = lint_project(PROJECT, store=store)
        assert any(f.path == "pkg/app.py" for f in first)

        fixed_helper = HELPER.replace(
            "random.shuffle(items)\n    return items",
            "return sorted(items)",
        )
        edited = [
            ("pkg/util.py", fixed_helper),
            ("pkg/app.py", CALLER),
            ("pkg/other.py", BYSTANDER),
        ]
        second, (_, misses, _) = deltas(
            store, lambda: lint_project(edited, store=store)
        )
        # The effect is gone at the origin; the caller's transitive
        # finding must disappear even though pkg/app.py never changed —
        # its findings entry is cone-keyed, so it misses and recomputes.
        assert second == []
        assert misses == 3

    def test_rule_selection_is_part_of_the_key(self, store):
        rules = [get_rule("R001")]
        all_findings = lint_project(PROJECT, store=store)
        subset = lint_project(PROJECT, rules=rules, store=store)
        # Serving the full-rule cache for a subset run (or vice versa)
        # would change results; both selections coexist in one store.
        assert {f.rule_id for f in subset} == {"R001"}
        assert lint_project(PROJECT, store=store) == all_findings


class TestDriverPathUsesTheStore:
    def test_lint_paths_warm_run_is_fully_cached(self, tmp_path):
        project = tmp_path / "proj"
        project.mkdir()
        (project / "mod.py").write_text("import random\nrandom.seed(7)\n")
        (project / "clean.py").write_text("def f(a):\n    return a\n")
        store = PlanStore(tmp_path / "store")

        cold = lint_paths([project], store=store)
        before = (store.hits, store.misses)
        warm = lint_paths([project], store=store)
        assert warm == cold
        assert store.misses == before[1]
        assert store.hits - before[0] == 4
