"""Flow-size distributions (§6.3)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import SimulationError
from repro.simulation.workloads import (
    WORKLOADS,
    FlowSizeDistribution,
)


class TestCatalog:
    def test_all_four_paper_workloads_present(self):
        # Fig 18: web1 from [4], web2/hadoop/cache from [41].
        assert set(WORKLOADS) == {"web1", "web2", "hadoop", "cache"}

    def test_short_flow_dominance(self):
        # These intra-DC-style workloads are dominated by short flows —
        # that's why they stress circuit switching (§6.3).
        for name in ("web2", "hadoop", "cache"):
            assert WORKLOADS[name].short_flow_fraction() > 0.5

    def test_web1_heavy_tail(self):
        w = WORKLOADS["web1"]
        # Mean far above median: a heavy tail.
        assert w.mean_bytes() > 10 * 19_000

    def test_means_are_positive_and_ordered_sanely(self):
        for dist in WORKLOADS.values():
            assert dist.mean_bytes() > 0
        # web search moves much more data per flow than web serving.
        assert WORKLOADS["web1"].mean_bytes() > WORKLOADS["web2"].mean_bytes()


class TestSampling:
    def test_samples_within_support(self):
        rng = random.Random(1)
        for dist in WORKLOADS.values():
            lo = dist.points[0][0]
            hi = dist.points[-1][0]
            for _ in range(500):
                s = dist.sample(rng)
                assert lo * 0.99 <= s <= hi * 1.01

    def test_empirical_median_tracks_cdf(self):
        rng = random.Random(7)
        dist = WORKLOADS["cache"]
        samples = sorted(dist.sample(rng) for _ in range(4000))
        median = samples[2000]
        # cache's CDF hits 0.5 at 1 KB.
        assert 500 <= median <= 2_000

    def test_empirical_mean_tracks_model(self):
        rng = random.Random(11)
        dist = WORKLOADS["web2"]
        n = 20000
        mean = sum(dist.sample(rng) for _ in range(n)) / n
        assert mean == pytest.approx(dist.mean_bytes(), rel=0.35)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_sampling_deterministic_per_seed(self, seed):
        d = WORKLOADS["hadoop"]
        a = [d.sample(random.Random(seed)) for _ in range(5)]
        b = [d.sample(random.Random(seed)) for _ in range(5)]
        assert a == b


class TestGoldenSampling:
    """Fixed seed -> exact sample vector, per workload table.

    Pins the log-interpolated inverse-CDF sampler byte-for-byte: any
    platform or refactor drift in the interpolation (or in the CDF knot
    tables themselves) changes these integers. Update only for a
    deliberate distribution change.
    """

    SEED = 20260808
    GOLDEN = {
        "web1": [76897, 1497, 14536, 106563, 5009, 29909284],
        "web2": [1940, 82, 371, 2515, 135, 9770847],
        "hadoop": [2797, 111, 295, 3694, 153, 289901131],
        "cache": [2519, 63, 408, 3181, 122, 9770847],
    }

    def test_pins_cover_all_workloads(self):
        assert set(self.GOLDEN) == set(WORKLOADS)

    def test_seeded_sample_vectors(self):
        for name, expected in self.GOLDEN.items():
            rng = random.Random(self.SEED)
            got = [WORKLOADS[name].sample(rng) for _ in range(6)]
            assert got == expected, name


class TestValidation:
    def test_needs_two_knots(self):
        with pytest.raises(SimulationError):
            FlowSizeDistribution("x", ((100, 0.0),))

    def test_cdf_must_reach_one(self):
        with pytest.raises(SimulationError):
            FlowSizeDistribution("x", ((100, 0.0), (200, 0.9)))

    def test_knots_must_be_sorted(self):
        with pytest.raises(SimulationError):
            FlowSizeDistribution("x", ((200, 0.0), (100, 1.0)))

    def test_sizes_must_be_positive(self):
        with pytest.raises(SimulationError):
            FlowSizeDistribution("x", ((0, 0.0), (100, 1.0)))
