"""Subprocess target for the pool-interrupt test (see test_engine.py).

Runs a ProcessBackend fan-out whose chunks sleep far longer than the test
will wait, prints ``READY <worker pids>`` once the pool is populated, and
then expects a SIGINT. The backend's interrupt handling must terminate
and join every worker before the KeyboardInterrupt propagates; exit code
3 + ``INTERRUPTED clean=True`` signals that path ran.
"""

from __future__ import annotations

import sys
import threading
import time

from repro.core.engine import ProcessBackend, worker_safe


@worker_safe
def sleepy_chunk(shared: None, chunk: list[int]) -> list[int]:
    time.sleep(60.0)
    return [0 for _ in chunk]


def main() -> int:
    # The interrupt path under test: iter_chunks itself terminates and
    # joins the pool before KeyboardInterrupt propagates, which is the
    # very behavior this helper asserts.
    backend = ProcessBackend(jobs=2)  # repro: noqa-R018

    def announce_workers() -> None:
        while True:
            executor = backend._executor
            processes = getattr(executor, "_processes", None) if executor else None
            if processes:
                print("READY " + " ".join(str(pid) for pid in processes), flush=True)
                return
            time.sleep(0.02)

    threading.Thread(target=announce_workers, daemon=True).start()
    try:
        for _ in backend.iter_chunks(sleepy_chunk, None, [[1], [2], [3], [4]]):
            pass
    except KeyboardInterrupt:
        # terminate() ran inside iter_chunks before re-raising; the
        # executor slot is cleared once the workers are joined.
        print(f"INTERRUPTED clean={backend._executor is None}", flush=True)
        return 3
    return 0


if __name__ == "__main__":
    sys.exit(main())
