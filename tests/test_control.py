"""Control plane: devices, wavelength packing, controller reconciliation."""

import pytest

from repro.control.controller import IrisController, compute_target
from repro.control.devices import (
    AmplifierDevice,
    ChannelEmulatorDevice,
    DeviceRegistry,
    FaultInjector,
    SpaceSwitchDevice,
    TransceiverDevice,
    Transport,
)
from repro.control.reconfigure import apply_reconfiguration, diff_connections
from repro.control.wavelengths import pack_transceivers
from repro.core.planner import plan_region
from repro.exceptions import ControlPlaneError, DeviceError


class TestSpaceSwitch:
    def test_connect_and_query(self):
        oss = SpaceSwitchDevice("oss:A")
        oss.connect("p1", "p2")
        assert oss.is_connected("p1", "p2")
        assert oss.connections() == {"p1": "p2"}

    def test_input_conflict(self):
        oss = SpaceSwitchDevice("oss:A")
        oss.connect("p1", "p2")
        with pytest.raises(DeviceError, match="already connected"):
            oss.connect("p1", "p3")

    def test_output_conflict(self):
        oss = SpaceSwitchDevice("oss:A")
        oss.connect("p1", "p2")
        with pytest.raises(DeviceError, match="already in use"):
            oss.connect("p3", "p2")

    def test_disconnect(self):
        oss = SpaceSwitchDevice("oss:A")
        oss.connect("p1", "p2")
        oss.disconnect("p1")
        assert oss.connections() == {}
        with pytest.raises(DeviceError):
            oss.disconnect("p1")


class TestOtherDevices:
    def test_amplifier_rejects_online_gain_change(self):
        amp = AmplifierDevice("amp:H1")
        with pytest.raises(DeviceError, match="one-time design decision"):
            amp.set_gain(18.0)

    def test_amplifier_enable_disable(self):
        amp = AmplifierDevice("amp:H1")
        amp.disable()
        assert not amp.status()["enabled"]
        amp.enable()
        assert amp.status()["enabled"]

    def test_transceiver_must_tune_before_enable(self):
        t = TransceiverDevice("xcvr:DC1:0", channels=40)
        with pytest.raises(DeviceError):
            t.enable()
        t.tune(7)
        t.enable()
        assert t.status() == {"channel": 7, "enabled": True}

    def test_transceiver_channel_range(self):
        t = TransceiverDevice("xcvr:DC1:0", channels=4)
        with pytest.raises(DeviceError):
            t.tune(4)

    def test_channel_emulator_complements_live(self):
        ase = ChannelEmulatorDevice("ase:DC1", channels=8)
        ase.set_live(frozenset({0, 1}))
        assert ase.emulated() == frozenset(range(2, 8))

    def test_channel_emulator_range_check(self):
        ase = ChannelEmulatorDevice("ase:DC1", channels=8)
        with pytest.raises(DeviceError):
            ase.set_live(frozenset({9}))


class TestTransport:
    def test_fault_injection_and_log(self):
        oss = SpaceSwitchDevice("oss:A")
        transport = Transport(oss, FaultInjector(fail_next=1))
        with pytest.raises(DeviceError, match="transient"):
            transport.call("connect", "p1", "p2")
        transport.call("connect", "p1", "p2")
        assert oss.is_connected("p1", "p2")
        assert transport.calls == 2

    def test_unknown_command(self):
        transport = Transport(SpaceSwitchDevice("oss:A"))
        with pytest.raises(DeviceError, match="unknown command"):
            transport.call("selfdestruct")

    def test_registry(self):
        reg = DeviceRegistry()
        reg.add(SpaceSwitchDevice("oss:A"))
        reg.add(AmplifierDevice("amp:H"))
        assert reg.names() == ["amp:H", "oss:A"]
        assert len(reg.by_kind("oss")) == 1
        with pytest.raises(DeviceError):
            reg.add(SpaceSwitchDevice("oss:A"))
        with pytest.raises(DeviceError):
            reg.get("nope")


class TestWavelengthPacking:
    def test_basic_packing(self):
        a = pack_transceivers({"B": 5, "C": 3}, {"B": 2, "C": 1}, 4, 16)
        assert len(a.slots) == 8
        assert a.channels_on_fiber("B", 0) == [0, 1, 2, 3]
        assert a.channels_on_fiber("B", 1) == [0]
        assert len(a.transceivers_toward("C")) == 3

    def test_demand_exceeding_fibers_rejected(self):
        with pytest.raises(ControlPlaneError, match="exceeds"):
            pack_transceivers({"B": 5}, {"B": 1}, 4, 16)

    def test_demand_exceeding_transceivers_rejected(self):
        with pytest.raises(ControlPlaneError, match="transceivers"):
            pack_transceivers({"B": 5, "C": 5}, {"B": 2, "C": 2}, 4, 8)

    def test_no_collisions(self):
        a = pack_transceivers({"B": 8, "C": 8}, {"B": 2, "C": 2}, 4, 16)
        slots = list(a.slots.values())
        assert len(slots) == len(set(slots))


class TestDiff:
    def test_diff_connections(self):
        current = {"oss:A": {"p1": "p2", "p3": "p4"}}
        target = {"oss:A": {"p1": "p2", "p3": "p5"}, "oss:B": {"q1": "q2"}}
        drop, add = diff_connections(current, target)
        assert drop == [("oss:A", "p3", "p4")]
        assert add == [("oss:A", "p3", "p5"), ("oss:B", "q1", "q2")]

    def test_noop_diff(self):
        state = {"oss:A": {"p1": "p2"}}
        assert diff_connections(state, state) == ([], [])


class TestReconfigure:
    def make_registry(self):
        reg = DeviceRegistry()
        reg.add(SpaceSwitchDevice("oss:A"))
        reg.add(SpaceSwitchDevice("oss:B"))
        return reg

    def test_apply_and_verify(self):
        reg = self.make_registry()
        target = {"oss:A": {"p1": "p2"}, "oss:B": {"q1": "q2"}}
        report = apply_reconfiguration(reg, {}, target)
        assert report.connects == 2
        assert report.verified
        assert report.duration_s > 0
        assert reg.get("oss:A").device.is_connected("p1", "p2")

    def test_noop_is_fast(self):
        reg = self.make_registry()
        report = apply_reconfiguration(reg, {}, {})
        assert not report.changed
        assert report.duration_s == 0.0

    def test_transient_failures_retried(self):
        reg = DeviceRegistry()
        oss = SpaceSwitchDevice("oss:A")
        reg.add(oss, FaultInjector(fail_next=2))
        report = apply_reconfiguration(reg, {}, {"oss:A": {"p1": "p2"}})
        assert report.retries == 2
        assert oss.is_connected("p1", "p2")

    def test_persistent_failure_raises(self):
        reg = DeviceRegistry()
        reg.add(SpaceSwitchDevice("oss:A"), FaultInjector(fail_next=10))
        with pytest.raises(ControlPlaneError, match="kept failing"):
            apply_reconfiguration(reg, {}, {"oss:A": {"p1": "p2"}}, max_retries=3)

    def test_drain_callback_sees_pairs(self):
        reg = self.make_registry()
        drained = []
        apply_reconfiguration(
            reg,
            {},
            {"oss:A": {"p1": "p2"}},
            drained_pairs=(("DC1", "DC2"),),
            drain_callback=lambda pairs: drained.extend(pairs),
        )
        assert drained == [("DC1", "DC2")]


class TestController:
    @pytest.fixture
    def plan(self, toy_region):
        return plan_region(toy_region)

    def test_compute_target_rounds_to_fibers(self, plan):
        per_fiber = 40 * 400.0  # 16 Tbps
        target = compute_target(
            plan, {("DC1", "DC2"): per_fiber * 2.5, ("DC1", "DC3"): 1.0}
        )
        assert target.fibers[("DC1", "DC2")] == 3
        assert target.fibers[("DC1", "DC3")] == 1

    def test_compute_target_enforces_hose(self, plan):
        over = plan.region.capacity_gbps("DC1") * 0.7
        with pytest.raises(ControlPlaneError, match="hose"):
            compute_target(
                plan, {("DC1", "DC2"): over, ("DC1", "DC3"): over}
            )

    def test_reconcile_lights_circuits(self, plan):
        controller = IrisController(plan)
        report = controller.apply_demands({("DC1", "DC3"): 16_000.0})
        assert report.verified and report.connects > 0
        # The cross pair transits both hub OSSes in both directions.
        h1 = controller.registry.get("oss:H1").device.connections()
        assert any("DC1" in str(k) or True for k in h1)
        assert controller.audit() == []

    def test_reconcile_tears_down_old_circuits(self, plan):
        controller = IrisController(plan)
        controller.apply_demands({("DC1", "DC3"): 16_000.0})
        first = dict(controller.registry.get("oss:H1").device.connections())
        report = controller.apply_demands({("DC2", "DC4"): 16_000.0})
        assert report.disconnects > 0
        second = controller.registry.get("oss:H1").device.connections()
        assert second != first
        assert controller.audit() == []

    def test_unchanged_demands_are_noop(self, plan):
        controller = IrisController(plan)
        demands = {("DC1", "DC2"): 16_000.0}
        controller.apply_demands(demands)
        report = controller.apply_demands(demands)
        assert not report.changed
        assert report.drained_pairs == ()

    def test_drained_pairs_are_the_changed_ones(self, plan):
        controller = IrisController(plan)
        controller.apply_demands(
            {("DC1", "DC2"): 16_000.0, ("DC3", "DC4"): 16_000.0}
        )
        report = controller.apply_demands(
            {("DC1", "DC2"): 16_000.0, ("DC3", "DC4"): 32_000.0}
        )
        assert report.drained_pairs == (("DC3", "DC4"),)

    def test_faulty_devices_still_converge(self, plan):
        controller = IrisController(plan, faults=FaultInjector(failure_rate=0.2, seed=7))
        report = controller.apply_demands({("DC1", "DC4"): 16_000.0})
        assert report.verified
        assert controller.audit() == []

    def test_unknown_pair_rejected(self, plan):
        with pytest.raises(ControlPlaneError):
            compute_target(plan, {("DC1", "DC9"): 1.0})


class TestWavelengthRetuning:
    @pytest.fixture
    def controller(self, toy_region):
        from repro.core.planner import plan_region as _plan

        return IrisController(_plan(toy_region))

    def test_packing_follows_demand(self, controller):
        # 1.5 fibers' worth toward DC3: 60 of 80 channels live on 2 fibers.
        controller.apply_demands({("DC1", "DC3"): 24_000.0})
        assignment = controller.wavelength_assignments["DC1"]
        assert len(assignment.transceivers_toward("DC3")) == 60
        assert assignment.channels_on_fiber("DC3", 0) == list(range(40))
        assert assignment.channels_on_fiber("DC3", 1) == list(range(20))

    def test_ase_fill_complements_live(self, controller):
        controller.apply_demands({("DC1", "DC3"): 24_000.0})
        ase = controller.registry.get("ase:DC1").device
        status = ase.fiber_status()
        assert status[("DC3", 0)]["emulated"] == []
        assert status[("DC3", 1)]["live"] == list(range(20))
        assert status[("DC3", 1)]["emulated"] == list(range(20, 40))

    def test_amp_loopback_connections(self, toy_region):
        """Paths with an in-line amplifier route through amp ports."""
        from repro.core.planner import plan_region as _plan
        from tests.conftest import build_toy_map
        from repro.region.fibermap import OperationalConstraints, RegionSpec

        # Stretch the toy so 90 km cross pairs need amplification at a hub
        # (runs of 30 and 60 km fit the 20 dB budget with one amp).
        fmap = build_toy_map(spoke_km=30.0, trunk_km=30.0)
        region = RegionSpec(
            fiber_map=fmap,
            dc_fibers={f"DC{i}": 10 for i in range(1, 5)},
            constraints=OperationalConstraints(failure_tolerance=0),
        )
        plan = _plan(region)
        amped = [
            (s, p) for (s, p), path in plan.effective_paths.items()
            if path.amp_node is not None
        ]
        assert amped, "expected amplified paths in the stretched toy"
        controller = IrisController(plan)
        scenario, pair = amped[0]
        controller.apply_demands({pair: 16_000.0})
        site = plan.effective_paths[(scenario, pair)].amp_node
        conns = controller.registry.get(f"oss:{site}").device.connections()
        assert any(
            isinstance(out, tuple) and out and out[0] == "amp-in"
            for out in conns.values()
        )
        assert controller.audit() == []


class TestTransceiverPoolTrim:
    def test_ceil_overshoot_trimmed(self, toy_region):
        """Three pairs each ceil-ing to 134 wavelengths would need 402 of
        DC1's 400 transceivers; the retune trims to the pool."""
        plan = plan_region(toy_region)
        controller = IrisController(plan)
        gbps = 133.3 * 400.0  # 133.3 wavelengths -> ceil 134; 3x still
        # within DC1's 160 Tbps hose, but 402 > 400 transceivers pre-trim.
        controller.apply_demands(
            {
                ("DC1", "DC2"): gbps,
                ("DC1", "DC3"): gbps,
                ("DC1", "DC4"): gbps,
            }
        )
        assignment = controller.wavelength_assignments["DC1"]
        assert len(assignment.slots) <= 400
        assert len(assignment.slots) >= 399  # only the overshoot trimmed


class TestControllerProperties:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    @given(
        demands_seed=st.integers(min_value=0, max_value=500),
        n_pairs=st.integers(min_value=1, max_value=6),
    )
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_reconcile_idempotent_and_audited(
        self, toy_region, demands_seed, n_pairs
    ):
        """For any hose-feasible demand matrix: reconciling twice is a
        no-op the second time, and the audit is always clean."""
        import itertools
        import random

        plan = plan_region(toy_region)
        controller = IrisController(plan)
        rng = random.Random(demands_seed)
        pairs = rng.sample(
            list(itertools.combinations(plan.region.dcs, 2)), n_pairs
        )
        # Keep each DC under capacity: at most 3 pairs/DC x 50 Tbps.
        demands = {pair: rng.uniform(100.0, 50_000.0) for pair in pairs}
        first = controller.apply_demands(demands)
        assert first.verified
        second = controller.apply_demands(demands)
        assert not second.changed
        assert controller.audit() == []
