"""EPS realization: segment merging, regeneration, inventory accounting."""

import pytest

from repro.core.topology import plan_topology
from repro.designs.eps import eps_inventory, eps_segments
from repro.region.fibermap import (
    FiberMap,
    OperationalConstraints,
    RegionSpec,
)

from tests.test_amplifiers import line_region


class TestSegments:
    def test_degree_two_huts_spliced_through(self):
        # A - M0 - M1 - B: one point-to-point link of 3 ducts.
        region = line_region(20.0, 20.0, 20.0)
        topology = plan_topology(region)
        segments = eps_segments(region, topology)
        assert len(segments) == 1
        fibers, length, terminations = segments[0]
        assert fibers == 4
        assert length == pytest.approx(60.0)
        assert terminations == 2

    def test_long_chain_regenerated(self):
        # 3 x 35 km = 105 km: beyond 80 km reach -> 2 pieces, 4 terminations.
        region = line_region(35.0, 35.0, 35.0)
        topology = plan_topology(region)
        ((fibers, length, terminations),) = eps_segments(region, topology)
        assert length == pytest.approx(105.0)
        assert terminations == 4

    def test_branch_points_terminate(self, toy_region):
        topology = plan_topology(toy_region)
        segments = eps_segments(toy_region, topology)
        # Hubs have degree 3: every duct is its own segment.
        assert len(segments) == 5
        assert all(t == 2 for _, _, t in segments)

    def test_unused_ducts_ignored(self):
        fmap = FiberMap()
        fmap.add_dc("A", 0, 0)
        fmap.add_dc("B", 20, 0)
        fmap.add_hut("H", 10, 0)
        fmap.add_hut("LONELY", 10, 30)
        fmap.add_duct("A", "H", length_km=10)
        fmap.add_duct("H", "B", length_km=10)
        fmap.add_duct("H", "LONELY", length_km=30)
        region = RegionSpec(
            fiber_map=fmap,
            dc_fibers={"A": 2, "B": 2},
            constraints=OperationalConstraints(failure_tolerance=0),
        )
        topology = plan_topology(region)
        segments = eps_segments(region, topology)
        assert len(segments) == 1  # A-H-B merged; LONELY spur unused


class TestInventory:
    def test_toy_matches_paper(self, toy_region):
        topology = plan_topology(toy_region)
        inv = eps_inventory(toy_region, topology)
        assert inv.dc_transceivers + inv.innetwork_transceivers == 4800
        assert inv.fiber_pair_spans == 60
        assert inv.oss_ports == 0

    def test_splicing_cuts_transceivers(self):
        # One 3-duct chain: per-duct termination would need 3x the
        # transceivers of the spliced point-to-point build.
        region = line_region(20.0, 20.0, 20.0)
        topology = plan_topology(region)
        inv = eps_inventory(region, topology)
        lam = region.wavelengths_per_fiber
        assert inv.dc_transceivers + inv.innetwork_transceivers == 2 * 4 * lam
        # Fiber is still leased per duct-span.
        assert inv.fiber_pair_spans == 3 * 4

    def test_regeneration_adds_transceivers(self):
        short = line_region(20.0, 20.0, 20.0)
        long = line_region(35.0, 35.0, 35.0)
        inv_short = eps_inventory(short, plan_topology(short))
        inv_long = eps_inventory(long, plan_topology(long))
        assert (
            inv_long.innetwork_transceivers
            > inv_short.innetwork_transceivers
        )
