"""Optical component models and the link-budget engine."""

import pytest

from repro.exceptions import ConstraintViolation
from repro.optics.budget import LinkBudget, evaluate_chain, path_budget
from repro.optics.components import (
    Amplifier,
    FiberSpan,
    OpticalSpaceSwitch,
    OpticalCrossConnect,
    PowerLimiter,
    Transceiver,
    WavelengthSelectiveSwitch,
)


class TestComponents:
    def test_fiber_span_loss(self):
        # 0.25 dB/km typical regional loss [20].
        assert FiberSpan(80.0).loss_db == pytest.approx(20.0)

    def test_fiber_span_validation(self):
        with pytest.raises(ValueError):
            FiberSpan(-1.0)
        with pytest.raises(ValueError):
            FiberSpan(10.0, loss_db_per_km=0)

    def test_amplifier_gain_and_noise(self):
        amp = Amplifier()
        state = Transceiver().launch()
        attenuated = FiberSpan(80.0).propagate(state)
        amplified = amp.propagate(attenuated)
        assert amplified.signal_dbm == pytest.approx(state.signal_dbm)
        assert amplified.noise_mw > attenuated.noise_mw

    def test_amplifier_input_overload_raises(self):
        amp = Amplifier(max_input_dbm=-20.0)
        state = Transceiver().launch()  # -10 dBm > -20 dBm limit
        with pytest.raises(ConstraintViolation):
            amp.propagate(state)

    def test_power_limiter_clamps(self):
        limiter = PowerLimiter(max_output_dbm=-15.0)
        state = Transceiver().launch()
        clamped = limiter.propagate(state)
        assert clamped.signal_dbm == pytest.approx(-15.0)

    def test_power_limiter_passthrough_below_limit(self):
        limiter = PowerLimiter(max_output_dbm=0.0)
        state = Transceiver().launch()
        assert limiter.propagate(state) == state

    def test_switch_losses(self):
        state = Transceiver().launch()
        assert (
            OpticalSpaceSwitch().propagate(state).signal_dbm
            == pytest.approx(state.signal_dbm - 1.5)
        )
        assert (
            OpticalCrossConnect().propagate(state).signal_dbm
            == pytest.approx(state.signal_dbm - 9.0)
        )
        assert (
            WavelengthSelectiveSwitch().propagate(state).signal_dbm
            == pytest.approx(state.signal_dbm - 6.0)
        )

    def test_passive_loss_preserves_osnr(self):
        state = Transceiver().launch()
        before = state.signal_dbm
        after = OpticalSpaceSwitch().propagate(state)
        # Signal and noise drop together: OSNR (ratio) unchanged.
        ratio_before = 10 ** (before / 10) / state.noise_mw
        ratio_after = 10 ** (after.signal_dbm / 10) / after.noise_mw
        assert ratio_after == pytest.approx(ratio_before)


class TestEvaluateChain:
    def test_empty_chain_is_launch_state(self):
        result = evaluate_chain([], Transceiver())
        assert result.rx_power_dbm == pytest.approx(-10.0)
        assert result.osnr_penalty_db == pytest.approx(0.0)
        assert result.amplifier_count == 0

    def test_single_amp_penalty_is_noise_figure(self):
        # Fig 9: "the first amplifier adds an OSNR penalty ... equal to the
        # amplifier's specified noise figure (~4.5 dB)".
        chain = [FiberSpan(80.0), Amplifier()]
        result = evaluate_chain(chain, Transceiver())
        assert result.osnr_penalty_db == pytest.approx(4.5, abs=0.1)

    def test_counts_components(self):
        chain = [FiberSpan(20.0), Amplifier(), FiberSpan(30.0)]
        result = evaluate_chain(chain, Transceiver())
        assert result.amplifier_count == 1
        assert result.total_fiber_km == pytest.approx(50.0)

    def test_link_closes_within_spec(self):
        # A typical compliant link: 60 km, one hut OSS, terminal amp.
        result = path_budget([30.0, 30.0])
        assert result.rx_power_dbm >= Transceiver().rx_sensitivity_dbm

    def test_linkbudget_alignment_validation(self):
        with pytest.raises(ValueError):
            LinkBudget(segments=(10.0,), oss_after=(), amp_after=(True,))
