"""Ablations of the design choices DESIGN.md calls out.

Not figures from the paper, but quantified justifications of decisions the
paper makes in prose:

* exact pruning of the failure enumeration (§4.1's tractability claim);
* letting amplifiers compete with cut-through fiber (Appendix A's "it may
  make sense to place amplifiers instead");
* the AZ/semi-distributed middle ground alleviating latency inflation
  (footnote 2);
* sensitivity of application impact to optical switch speed (§5.2's
  "in the future, we expect sub-ms switching for OSSes" [25]).
"""


from repro.core.amplifiers import place_amplifiers
from repro.core.cutthrough import place_cut_throughs
from repro.core.topology import (
    enumerate_scenario_paths,
    plan_topology,
    prune_overlong_ducts,
)
from repro.cost.pricebook import PriceBook
from repro.designs.centralized import CentralizedDesign
from repro.designs.semidistributed import cluster_zones
from repro.region.catalog import make_region
from repro.simulation.failover import FailoverConfig, run_failover



def test_ablation_enumeration_pruning(benchmark, report):
    """Pruned vs brute-force failure enumeration: identical capacities,
    far fewer scenarios."""
    instance = make_region(map_index=0, n_dcs=5, dc_fibers=8)
    region = instance.spec
    fmap = prune_overlong_ducts(region.fiber_map, region.constraints.max_span_km)

    def both():
        pruned, raw = enumerate_scenario_paths(fmap, 1, prune=True)
        brute, _ = enumerate_scenario_paths(fmap, 1, prune=False)
        return pruned, brute, raw

    pruned, brute, raw = benchmark.pedantic(both, rounds=1, iterations=1)
    plan_p = plan_topology(region, prune_enumeration=True)
    plan_b = plan_topology(region, prune_enumeration=False)

    report("Abl.   exact failure-enumeration pruning (5 DCs, tolerance 1)")
    report(f"        scenarios visited     brute {len(brute)}  pruned "
           f"{len(pruned)} ({len(pruned) / len(brute) * 100:.0f}%)")
    report(f"        capacities identical  {dict(plan_p.edge_capacity) == dict(plan_b.edge_capacity)}")

    assert dict(plan_p.edge_capacity) == dict(plan_b.edge_capacity)
    assert len(pruned) < len(brute)


def test_ablation_amplifiers_vs_cutthrough(benchmark, report):
    """Appendix A: amplifiers competing in the greedy slash the fiber that
    a cut-through-only realization would lease."""
    instance = make_region(map_index=0, n_dcs=5, dc_fibers=8)
    region = instance.spec
    prices = PriceBook.default()
    topology = plan_topology(region)

    def run(allow_amps: bool):
        amps, effective = place_amplifiers(region, topology)
        links, _, final = place_cut_throughs(
            region,
            effective,
            site_counts=amps.site_counts,
            assignments=amps.assignments,
            allow_amplifiers=allow_amps,
        )
        fiber = sum(link.fiber_pair_spans for link in links)
        cost = (
            final.total_amplifiers * prices.amplifier
            + fiber * prices.fiber_pair_span
            + 4 * sum(link.fiber_pairs for link in links) * prices.oss_port
        )
        return final.total_amplifiers, fiber, cost

    with_amps = benchmark.pedantic(lambda: run(True), rounds=1, iterations=1)
    without = run(False)

    report("Abl.   amplifier-vs-cut-through competition (Appendix A)")
    report(f"        combined greedy       amps={with_amps[0]} "
           f"cut-through spans={with_amps[1]} cost=${with_amps[2]:,.0f}")
    report(f"        cut-through only      amps={without[0]} "
           f"cut-through spans={without[1]} cost=${without[2]:,.0f}")
    report(f"        saving                {(1 - with_amps[2] / without[2]) * 100:.0f}%")

    assert with_amps[2] <= without[2]
    assert without[1] > with_amps[1]


def test_ablation_az_latency(benchmark, report):
    """Footnote 2: AZ-style designs alleviate centralized latency inflation."""
    instance = make_region(map_index=1, n_dcs=8, dc_fibers=8)
    region = instance.spec

    def worst_distances():
        central = CentralizedDesign(region, hubs=instance.hubs)
        az2 = cluster_zones(region, 2)
        az4 = cluster_zones(region, 4)
        pairs = list(region.iter_pairs())
        direct = {
            p: region.fiber_map.fiber_distance(*p) for p in pairs
        }

        def mean_inflation(distance_fn):
            return sum(
                distance_fn(a, b) / direct[(a, b)] for a, b in pairs
            ) / len(pairs)

        return {
            "centralized": mean_inflation(central.pair_distance_km),
            "az2": mean_inflation(az2.pair_distance_km),
            "az4": mean_inflation(az4.pair_distance_km),
        }

    inflation = benchmark.pedantic(worst_distances, rounds=1, iterations=1)

    report("Abl.   mean latency inflation vs direct shortest paths (8 DCs)")
    report(f"        centralized           {inflation['centralized']:.2f}x")
    report(f"        2 availability zones  {inflation['az2']:.2f}x")
    report(f"        4 availability zones  {inflation['az4']:.2f}x")
    report("        paper (footnote 2): AZs 'may alleviate some of this "
           "latency inflation'")

    assert inflation["az4"] <= inflation["az2"] + 0.15
    assert inflation["az4"] <= inflation["centralized"]


def test_ablation_switch_speed(benchmark, report):
    """Failover transient vs optical switch speed: the [25] trajectory."""
    speeds = {"sub-ms (future MEMS)": 0.001, "20 ms OSS": 0.02, "70 ms two-hut": 0.07, "500 ms (slow)": 0.5}

    def run_all():
        return {
            label: run_failover(
                FailoverConfig(duration_s=8.0, switch_time_s=s, seed=6)
            )
            for label, s in speeds.items()
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    report("Abl.   duct-cut transient vs switch speed (worst extra FCT)")
    for label, result in results.items():
        report(f"        {label:<22}+{result.max_extra_fct_s * 1000:7.0f} ms "
               f"(p99 affected {result.p99_affected_ratio:.2f}x)")

    ordered = [results[k].max_extra_fct_s for k in speeds]
    # Monotone: faster switching, smaller transient.
    assert ordered[0] <= ordered[-1]
    assert results["sub-ms (future MEMS)"].max_extra_fct_s < 0.2
