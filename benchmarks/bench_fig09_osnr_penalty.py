"""Fig 9: OSNR penalty versus cascaded amplifier count.

Paper: the first amplifier costs its ~4.5 dB noise figure, each doubling
~3 dB more; the 9 dB budget therefore allows at most 3 amplifiers
end-to-end, i.e. one extra in-line amplifier on a DC-DC path.
"""

import pytest

from repro.optics.osnr import (
    cascade_penalty_db,
    emulated_cascade,
    max_amplifiers_within_budget,
)


def run_cascades():
    return {n: emulated_cascade(n).osnr_penalty_db for n in range(1, 9)}


def test_fig09_osnr_penalty(benchmark, report):
    measured = benchmark(run_cascades)

    report("Fig 9  OSNR penalty vs amplifier count (emulated testbed chain)")
    report(f"        {'amps':>6}{'closed form':>13}{'budget engine':>15}")
    for n in range(1, 9):
        report(f"        {n:>6}{cascade_penalty_db(n):>13.2f}{measured[n]:>15.2f}")
    report(f"        first amp             paper ~4.5 dB measured {measured[1]:.2f} dB")
    report(f"        per doubling          paper ~3 dB   measured "
           f"{measured[8] - measured[4]:.2f} dB")
    report(f"        amps in 9 dB budget   paper 3       measured "
           f"{max_amplifiers_within_budget()}")

    assert measured[1] == pytest.approx(4.5, abs=0.1)
    for n in (1, 2, 4):
        assert measured[2 * n] - measured[n] == pytest.approx(3.0, abs=0.1)
    assert max_amplifiers_within_budget() == 3
