"""Fig 12(a)-(d): the design-space cost and port sweep.

Paper (240 scenarios: 10 maps x n in {5,10,15,20} x f in {8,16,32} x
lambda in {40,64}):

* (a) EPS >= 5x Iris for 80% of scenarios; EPS/Hybrid ~ EPS/Iris;
      in-network-only cost >= 10x for 80%.
* (b) Iris keeps a substantial advantage at short-reach transceiver prices.
* (c) EPS needs many times more in-network ports than DC ports; Iris < 1x
      in most scenarios.
* (d) Iris guaranteeing capacity under 2 failures is > 2x cheaper than an
      EPS with no failure guarantees, across all scenarios.

This bench runs the reduced grid (same axes, smaller values) sized for CI;
``iris sweep --full`` reproduces the complete 240-point grid.
"""

from conftest import fraction, median


def test_fig12a_cost_cdf(benchmark, mini_sweep_records, report):
    records = benchmark(lambda: mini_sweep_records)
    eps_iris = [r.eps_over_iris for r in records]
    eps_hybrid = [r.eps_over_hybrid for r in records]
    innet = [r.eps_over_iris_innetwork for r in records]

    report(f"Fig 12a cost ratios over {len(records)} scenarios (mini grid)")
    report(f"        EPS/Iris >= 5x        paper 80%     measured "
           f"{fraction(eps_iris, lambda v: v >= 5) * 100:.0f}%")
    report(f"        median EPS/Iris       paper ~7x     measured "
           f"{median(eps_iris):.1f}x")
    report(f"        median EPS/Hybrid     paper ~EPS/Iris measured "
           f"{median(eps_hybrid):.1f}x")
    report(f"        in-network >= 10x     paper 80%     measured "
           f"{fraction(innet, lambda v: v >= 10) * 100:.0f}%")

    assert fraction(eps_iris, lambda v: v >= 5) >= 0.8
    assert median(eps_iris) >= 5.0
    # Hybrid and Iris are "virtually identical".
    assert all(
        abs(a - b) / a < 0.2 for a, b in zip(eps_iris, eps_hybrid)
    )
    assert fraction(innet, lambda v: v >= 10) >= 0.7


def test_fig12b_sr_prices(benchmark, mini_sweep_records, report):
    records = benchmark(lambda: mini_sweep_records)
    ratios = [r.eps_over_iris_sr for r in records]

    report("Fig 12b EPS/Iris with DCI transceivers at short-reach prices")
    report(f"        Iris still cheaper    paper all     measured "
           f"{fraction(ratios, lambda v: v > 1) * 100:.0f}%")
    report(f"        median ratio          paper ~3x     measured "
           f"{median(ratios):.1f}x")

    assert all(v > 1.0 for v in ratios)
    assert median(ratios) >= 2.0


def test_fig12c_port_ratio(benchmark, mini_sweep_records, report):
    records = benchmark(lambda: mini_sweep_records)
    eps_ports = [r.eps_port_ratio for r in records]
    iris_ports = [r.iris_port_ratio for r in records]

    report("Fig 12c in-network ports / DC ports")
    report(f"        EPS median            paper ~10x    measured "
           f"{median(eps_ports):.1f}x")
    report(f"        Iris median           paper <1x     measured "
           f"{median(iris_ports):.2f}x")
    report(f"        Iris < 2x everywhere  paper yes     measured "
           f"{fraction(iris_ports, lambda v: v < 2) * 100:.0f}%")

    assert median(eps_ports) > 5.0
    assert median(iris_ports) < 2.0
    assert all(e > i for e, i in zip(eps_ports, iris_ports))


def test_fig12d_failure_guarantees(benchmark, mini_sweep_records, report):
    records = benchmark(lambda: mini_sweep_records)
    ratios = [r.eps_tol0_over_iris for r in records]

    report("Fig 12d unprotected EPS vs Iris tolerating 2 duct cuts")
    report(f"        EPS0/Iris2 > 2x       paper all     measured "
           f"{fraction(ratios, lambda v: v > 2) * 100:.0f}%")
    report(f"        median ratio          paper ~4x     measured "
           f"{median(ratios):.1f}x")

    assert fraction(ratios, lambda v: v > 2) >= 0.9
