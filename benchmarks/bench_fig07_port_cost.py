"""Fig 7: relative port-cost breakdown as topologies distribute (16 DCs).

Paper: full mesh is "roughly 7x" the centralized cost with electrical
switching (closed form (N+1)/2 = 8.5); semi-distributed remains more
expensive than centralized even with short-reach group-internal
transceivers; the optical column stays within ~1.5x across the spectrum.
"""

from repro.analysis.portcost import port_cost_table


def test_fig07_port_cost(benchmark, report):
    rows = benchmark(port_cost_table, 16)
    by_groups = {r.groups: r for r in rows}
    mesh = by_groups[16]

    report("Fig 7  port-cost breakdown vs groups (N=16, centralized = 1.0)")
    report(f"        {'groups':>8}{'electrical':>12}{'with SR':>10}{'optical':>10}")
    for row in rows:
        report(
            f"        {row.groups:>8}{row.electrical:>12.2f}"
            f"{row.electrical_sr:>10.2f}{row.optical:>10.2f}"
        )
    report(f"        mesh/centralized      paper ~7x     measured "
           f"{mesh.electrical:.1f}x")

    assert 6.0 <= mesh.electrical <= 9.0
    assert all(by_groups[g].electrical_sr > 1.0 for g in (2, 4, 8, 16))
    assert all(r.optical <= 1.5 for r in rows)
