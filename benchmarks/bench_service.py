"""Planner service: patched-vs-cold replan latency and coalesce rate.

The service's pitch is that a region *edit* should not cost a full
replan: ``apply_delta`` reuses the old plan's scenario paths (execution-
identity oracle), hose flows (warm cache + residual repair), and — when
the bypass proof covers every scenario — the entire optical realization,
while guaranteeing the patched plan is byte-identical to a cold replan
of the mutated region. This bench measures that on the golden region
(the same one ``bench_planner_runtime.py`` tracks):

* **add**: a conservative bypass duct (priced 5% above its worst-case
  alternative route, so it provably changes no scenario path);
* **cut**: cutting that duct again (the cut-mode oracle, landing back on
  the original region).

Gate: patched must be at least ``MIN_SPEEDUP``x faster than cold in both
directions, and byte-identical. The coalesce section drives an in-process
request stampede through :class:`PlannerService` and asserts the single-
flight rate.

Run directly for the CI smoke pass or to append a ``kind="service"``
trajectory row::

    PYTHONPATH=src python benchmarks/bench_service.py --smoke
    PYTHONPATH=src python benchmarks/bench_service.py --json BENCH_planner.json
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

import networkx as nx

from repro.core.hose import clear_hose_cache
from repro.core.planner import _plan_region
from repro.region.catalog import make_region
from repro.region.delta import RegionDelta
from repro.serialize import plan_to_json, region_to_dict
from repro.service import PlannerService, ServiceConfig, apply_delta
from repro.service.replan import DeltaStats

REPO_ROOT = Path(__file__).resolve().parents[1]

#: ``BENCH_planner.json`` row layout version (bump on breaking changes).
BENCH_SCHEMA_VERSION = 1

#: The golden region every planner bench tracks (5 DCs, 8 fibers, map 0).
GOLDEN_REGION = {"map_index": 0, "n_dcs": 5, "dc_fibers": 8}

#: The acceptance gate: patched replans must beat cold by at least this.
MIN_SPEEDUP = 5.0

#: Timing repetitions (best-of, damping scheduler noise).
REPEATS = 3

#: Stampede width for the coalesce-rate section.
STAMPEDE_CLIENTS = 8


def _bypass_delta(plan, factor: float = 1.05) -> RegionDelta:
    """A duct between non-adjacent nodes, priced ``factor``x its worst-case
    alternative route over every enumerated scenario — every strict bypass
    check passes, so the patched topology is provably unchanged."""
    fmap = plan.region.fiber_map
    scenarios = list(plan.topology.scenario_paths)
    existing = set(fmap.ducts)
    for u in fmap.nodes:
        for v in fmap.nodes:
            if v <= u or (min(u, v), max(u, v)) in existing:
                continue
            worst = 0.0
            for scenario in scenarios:
                graph = fmap.subgraph_without(scenario)
                try:
                    dist = nx.dijkstra_path_length(
                        graph, u, v, weight="length_km"
                    )
                except (nx.NetworkXNoPath, nx.NodeNotFound):
                    worst = None
                    break
                worst = max(worst, dist)
            if worst is not None and worst > 0:
                return RegionDelta.duct_added(u, v, length_km=factor * worst)
    raise AssertionError("no bypassable node pair in the region")


def _best_of(fn, repeats: int = REPEATS):
    """(best wall seconds, last result) over ``repeats`` runs of ``fn``."""
    best_s, result = None, None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        if best_s is None or elapsed < best_s:
            best_s = elapsed
    return best_s, result


def _measure_direction(base_plan, delta):
    """Cold-vs-patched timings for one delta direction, parity-asserted.

    Cold replans the mutated region from a *cleared* hose cache (a fresh
    daemon, the worst case); patched runs ``apply_delta`` against the
    warm base plan (the steady-state daemon). Both sides are best-of-N.
    """
    mutated = delta.apply_to_region(base_plan.region)

    def cold():
        clear_hose_cache()
        return _plan_region(mutated)

    cold_s, cold_plan = _best_of(cold)

    # Rewarm exactly what a live daemon would hold: the base plan's run.
    clear_hose_cache()
    _plan_region(base_plan.region)

    stats = DeltaStats()

    def patched():
        return apply_delta(base_plan, delta, stats=stats)

    patched_s, patched_plan = _best_of(patched)

    assert plan_to_json(patched_plan, full=True) == plan_to_json(
        cold_plan, full=True
    ), "patched plan diverged from cold replan"
    return cold_s, patched_s, patched_plan, stats


def _measure_coalesce(n_clients: int = STAMPEDE_CLIENTS):
    """Drive a same-key stampede through the service; return its counters."""
    region = make_region(map_index=1, n_dcs=4, dc_fibers=6).spec
    # Workers start after the burst so the job is in flight for every
    # submission — the coalescing window is deterministic regardless of
    # hose-cache warmth (a warm plan can otherwise finish mid-stampede).
    service = PlannerService(ServiceConfig(workers=2))
    try:
        request = {"op": "submit", "region": region_to_dict(region)}
        responses = [None] * n_clients
        barrier = threading.Barrier(n_clients)

        def client(i):
            barrier.wait()
            responses[i] = service.handle(dict(request))

        threads = [
            threading.Thread(target=client, args=(i,))
            for i in range(n_clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        service._start_workers()
        job_ids = {r["job_id"] for r in responses if r and r.get("ok")}
        results = {
            service.handle(
                {"op": "result", "job_id": job_id, "timeout_s": 300}
            )["plan"]
            for job_id in job_ids
        }
        assert len(results) == 1, "stampede responses not bit-identical"
        return service.counters()
    finally:
        service.close()


def _measure_golden():
    """The full service bench on the golden region; returns the row dict."""
    from repro import __version__

    instance = make_region(**GOLDEN_REGION)
    clear_hose_cache()
    base_plan = _plan_region(instance.spec)

    add = _bypass_delta(base_plan)
    add_cold_s, add_patched_s, widened, add_stats = _measure_direction(
        base_plan, add
    )

    cut = RegionDelta.duct_cut(*add.duct)
    cut_cold_s, cut_patched_s, restored, cut_stats = _measure_direction(
        widened, cut
    )
    # The cut lands back on the original region: full-circle parity.
    assert plan_to_json(restored, full=True) == plan_to_json(
        base_plan, full=True
    ), "add-then-cut did not restore the original plan"

    counters = _measure_coalesce()
    attempts = counters["queued"] + counters["coalesced"]
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "version": __version__,
        "kind": "service",
        "region": dict(GOLDEN_REGION),
        "jobs": 1,
        "backend": "serial",
        "scenarios": len(base_plan.topology.scenario_paths),
        "add": {
            "cold_s": round(add_cold_s, 4),
            "patched_s": round(add_patched_s, 4),
            "speedup": round(add_cold_s / add_patched_s, 2),
            "mode": add_stats.mode,
            "realization": add_stats.realization,
            "scenarios_reused": add_stats.reused,
            "scenarios_computed": add_stats.computed,
        },
        "cut": {
            "cold_s": round(cut_cold_s, 4),
            "patched_s": round(cut_patched_s, 4),
            "speedup": round(cut_cold_s / cut_patched_s, 2),
            "mode": cut_stats.mode,
            "realization": cut_stats.realization,
            "scenarios_reused": cut_stats.reused,
            "scenarios_computed": cut_stats.computed,
        },
        "coalesce": {
            "clients": attempts,
            "coalesced": counters["coalesced"],
            "cold_plans": counters["cold"],
            "rate": round(counters["coalesced"] / attempts, 3)
            if attempts
            else 0.0,
        },
    }


def _gate(row) -> list[str]:
    problems = []
    for direction in ("add", "cut"):
        speedup = row[direction]["speedup"]
        if speedup < MIN_SPEEDUP:
            problems.append(
                f"{direction}: patched speedup {speedup:.2f}x "
                f"< gate {MIN_SPEEDUP:.1f}x"
            )
    if row["coalesce"]["cold_plans"] != 1:
        problems.append(
            f"stampede cost {row['coalesce']['cold_plans']} cold plan(s), "
            "expected exactly 1"
        )
    return problems


# ----------------------------------------------------------------------
# pytest entry points


def test_patched_replan_beats_cold(report):
    row = _measure_golden()
    for direction in ("add", "cut"):
        d = row[direction]
        report(
            f"service {direction}-delta: cold {d['cold_s']:.2f} s -> "
            f"patched {d['patched_s']:.3f} s ({d['speedup']:.1f}x, "
            f"mode={d['mode']}, realization={d['realization']})"
        )
    c = row["coalesce"]
    report(
        f"service stampede: {c['clients']} clients -> {c['cold_plans']} cold "
        f"plan(s), coalesce rate {c['rate']:.0%}"
    )
    problems = _gate(row)
    assert not problems, problems


# ----------------------------------------------------------------------
# CLI entry points (CI smoke + trajectory row)


def _smoke() -> int:
    """A fast pass on a small region: parity + coalescing, no speed gate."""
    instance = make_region(map_index=0, n_dcs=4, dc_fibers=6)
    clear_hose_cache()
    base_plan = _plan_region(instance.spec)
    delta = _bypass_delta(base_plan)
    cold_s, patched_s, _plan, stats = _measure_direction(base_plan, delta)
    print(
        f"service smoke: cold {cold_s:.2f} s -> patched {patched_s:.3f} s "
        f"({cold_s / patched_s:.1f}x, mode={stats.mode}, "
        f"realization={stats.realization})"
    )
    counters = _measure_coalesce()
    print(
        f"service smoke: stampede {counters['queued'] + counters['coalesced']}"
        f" submits -> {counters['cold']} cold plan(s), "
        f"{counters['coalesced']} coalesced"
    )
    if counters["cold"] != 1:
        print("SMOKE FAILED: stampede cost more than one cold plan")
        return 1
    return 0


def _bench_json(path: str) -> int:
    """Append one ``kind="service"`` row to ``path`` and apply the gate."""
    import json

    row = _measure_golden()
    target = Path(path)
    if target.exists():
        payload = json.loads(target.read_text())
        if payload.get("schema_version") != BENCH_SCHEMA_VERSION:
            print(
                f"BENCH GATE FAILED: {path} has schema_version "
                f"{payload.get('schema_version')!r}, expected "
                f"{BENCH_SCHEMA_VERSION}"
            )
            return 1
    else:
        payload = {"schema_version": BENCH_SCHEMA_VERSION, "rows": []}
    payload["rows"].append(row)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    print(
        f"BENCH_planner service row appended to {path} "
        f"({len(payload['rows'])} row(s))"
    )
    for direction in ("add", "cut"):
        d = row[direction]
        print(
            f"  {direction}: cold {d['cold_s']:.2f} s -> patched "
            f"{d['patched_s']:.3f} s ({d['speedup']:.1f}x, "
            f"realization={d['realization']})"
        )
    c = row["coalesce"]
    print(
        f"  coalesce: {c['clients']} clients, rate {c['rate']:.0%}, "
        f"{c['cold_plans']} cold plan(s)"
    )
    problems = _gate(row)
    for problem in problems:
        print(f"BENCH GATE FAILED: {problem}")
    return 1 if problems else 0


if __name__ == "__main__":
    import argparse
    import sys

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the quick parity+coalesce smoke pass and exit",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="append a kind=service BENCH_planner.json row and apply "
        "the patched-vs-cold speed gate",
    )
    cli_args = parser.parse_args()
    if not cli_args.smoke and not cli_args.json:
        parser.error(
            "this entry point supports --smoke and/or --json; "
            "use pytest for the full benchmark"
        )
    status = 0
    if cli_args.smoke:
        status = _smoke()
    if status == 0 and cli_args.json:
        status = _bench_json(cli_args.json)
    sys.exit(status)
