"""Appendix A: cost overhead of amplifier and cut-through placement.

Paper: "The cost overhead due to additional amplifiers and cut-through
links using the described heuristic is 3% on average (8% in the worst
case) compared to the total network cost across all test scenarios."
"""

from repro.cost.estimator import estimate_cost
from repro.cost.pricebook import PriceBook

from conftest import median


def overhead_fraction(plan, prices: PriceBook) -> float:
    """(in-line amplifiers + cut-through fiber and ports) / total cost."""
    total = estimate_cost(plan.inventory(), prices).total
    amps = plan.amplifiers.total_amplifiers * prices.amplifier
    cut_fiber = sum(link.fiber_pair_spans for link in plan.cut_throughs)
    cut_ports = 4 * sum(link.fiber_pairs for link in plan.cut_throughs)
    extra = (
        amps
        + cut_fiber * prices.fiber_pair_span
        + cut_ports * prices.oss_port
    )
    return extra / total


def test_appendix_a_overhead(benchmark, sample_plans, report):
    prices = PriceBook.default()
    overheads = benchmark(
        lambda: [overhead_fraction(plan, prices) for plan in sample_plans]
    )

    report("App A  amplifier + cut-through overhead vs total network cost")
    for plan, frac in zip(sample_plans, overheads):
        n = len(plan.region.dcs)
        report(f"        {n} DCs: amps={plan.amplifiers.total_amplifiers:<4} "
               f"cut-throughs={len(plan.cut_throughs):<3} "
               f"overhead={frac * 100:.1f}%")
    report(f"        average overhead      paper 3%      measured "
           f"{sum(overheads) / len(overheads) * 100:.1f}%")
    report(f"        worst case            paper 8%      measured "
           f"{max(overheads) * 100:.1f}%")

    # Synthetic grid maps are hoppier than real metro plants, so we accept
    # a wider band while requiring the same order of magnitude.
    assert median(overheads) <= 0.15
    assert max(overheads) <= 0.25
