"""Multi-TM robust planning vs the hose envelope (METTEOR-style).

The robust design plans one topology simultaneously feasible for an
ensemble of sampled traffic matrices instead of the full hose envelope.
This bench quantifies the trade on the golden region:

* **cost** — robust vs iris / eps / hybrid equipment cost (the ensemble
  is strictly inside the hose, so robust must come in at or under iris);
* **FCT** — the robust-static fabric (provisioned for the ensemble max,
  never reconfigured) vs the reconfiguring Iris fabric, as p99 slowdown
  over the same EPS baseline and the same flow trace.

Run directly for a CI smoke pass::

    PYTHONPATH=src python benchmarks/bench_robust_tm.py --smoke

or to append a ``kind: robust_tm`` trajectory row to the committed
benchmark file::

    PYTHONPATH=src python benchmarks/bench_robust_tm.py --smoke \\
        --json BENCH_planner.json
"""

import random
import time
from pathlib import Path

from repro.core.planner import _plan_region
from repro.cost.estimator import estimate_cost
from repro.designs import get_design
from repro.designs.robust import TrafficEnsembleSpec, plan_robust
from repro.region.catalog import make_region
from repro.simulation.scenarios import (
    ScenarioConfig,
    run_comparison,
    run_robust_comparison,
)
from repro.simulation.traffic import sample_ensemble

REPO_ROOT = Path(__file__).resolve().parents[1]

#: ``BENCH_planner.json`` row layout version (shared with the planner
#: runtime bench; this bench tags its rows with ``"kind": "robust_tm"``).
BENCH_SCHEMA_VERSION = 1

#: The golden region (tests/test_golden.py) the trajectory tracks.
GOLDEN_REGION = {"map_index": 0, "n_dcs": 5, "dc_fibers": 8}

#: The Fig 17-style operating point the FCT comparison runs at.
FCT_SCENARIO = ScenarioConfig(
    n_dcs=5,
    duration_s=12.0,
    change_interval_s=4.0,
    utilization=0.6,
    seed=17,
)

#: Ensemble seed for the FCT comparison's robust-static allocation.
FCT_ENSEMBLE_SEED = 99


def _design_costs(region) -> dict[str, float]:
    """Total equipment cost per design on ``region``."""
    iris_plan = _plan_region(region)
    robust_plan = plan_robust(region)
    return {
        "iris": estimate_cost(iris_plan.inventory()).total,
        "robust": estimate_cost(robust_plan.inventory()).total,
        "eps": estimate_cost(get_design("eps").plan(region)).total,
        "hybrid": estimate_cost(get_design("hybrid").plan(region)).total,
    }


def _fct_comparison(config: ScenarioConfig) -> dict[str, float]:
    """p99 FCT slowdowns (vs EPS) of the reconfiguring Iris fabric and
    the robust-static fabric, over the identical flow trace."""
    ensemble = sample_ensemble(
        config.dcs, random.Random(FCT_ENSEMBLE_SEED), count=5
    )
    iris = run_comparison(config)
    robust = run_robust_comparison(config, ensemble)
    return {
        "iris_p99": iris.summary.p99_all,
        "robust_p99": robust.summary.p99_all,
        "iris_reconfigurations": iris.reconfigurations,
        "robust_reconfigurations": robust.reconfigurations,
    }


def test_robust_cost_vs_baselines(report):
    """Robust plans inside the hose envelope: never costlier than iris."""
    region = make_region(**GOLDEN_REGION).spec
    costs = _design_costs(region)

    report("robust cost vs baselines (5-DC golden region, 5-TM ensemble)")
    for name in ("robust", "iris", "hybrid", "eps"):
        report(f"        {name:<8}{costs[name]:>14,.0f} $/yr  "
               f"({costs[name] / costs['iris']:.2f}x iris)")

    assert costs["robust"] <= costs["iris"]
    # EPS stays far above every optical design (Fig 12's headline gap).
    assert costs["eps"] > 2 * costs["robust"]


def test_robust_static_fct(report):
    """The robust fabric avoids reconfiguration churn entirely; its p99
    penalty comes only from tighter circuits."""
    fct = _fct_comparison(FCT_SCENARIO)

    report("robust-static vs iris FCT (Fig 17-style operating point)")
    report(f"        iris    p99 slowdown {fct['iris_p99']:.3f}  "
           f"({fct['iris_reconfigurations']:.0f} reconfiguration(s))")
    report(f"        robust  p99 slowdown {fct['robust_p99']:.3f}  "
           f"(0 reconfigurations by construction)")

    assert fct["robust_reconfigurations"] == 0
    assert fct["iris_p99"] >= 1.0
    assert fct["robust_p99"] >= 1.0
    # The static fabric stays in the same regime as the reconfiguring
    # one at this operating point (no order-of-magnitude blowup).
    assert fct["robust_p99"] < 2.0


def _measure(smoke: bool) -> dict:
    """One full cost + FCT measurement; smaller scenario under --smoke."""
    region = make_region(**GOLDEN_REGION).spec
    t0 = time.perf_counter()
    costs = _design_costs(region)
    plan_s = time.perf_counter() - t0

    config = FCT_SCENARIO
    if smoke:
        from dataclasses import replace

        config = replace(config, duration_s=6.0)
    t0 = time.perf_counter()
    fct = _fct_comparison(config)
    sim_s = time.perf_counter() - t0

    return {
        "costs": costs,
        "fct": fct,
        "plan_s": round(plan_s, 4),
        "sim_s": round(sim_s, 4),
        "sim_duration_s": config.duration_s,
    }


def _print_summary(measured: dict) -> None:
    costs = measured["costs"]
    fct = measured["fct"]
    print("robust-TM bench (5-DC golden region, 5-TM ensemble)")
    for name in ("robust", "iris", "hybrid", "eps"):
        print(f"  {name:<8}{costs[name]:>14,.0f} $/yr  "
              f"({costs[name] / costs['iris']:.2f}x iris)")
    print(f"  FCT p99: iris {fct['iris_p99']:.3f} "
          f"({fct['iris_reconfigurations']:.0f} reconfig) vs "
          f"robust-static {fct['robust_p99']:.3f} (0 reconfig)")
    print(f"  planned 4 designs in {measured['plan_s']:.1f} s, "
          f"simulated {measured['sim_duration_s']:.0f} s twice in "
          f"{measured['sim_s']:.1f} s")


def _gate(measured: dict) -> list[str]:
    costs = measured["costs"]
    fct = measured["fct"]
    problems = []
    if costs["robust"] > costs["iris"]:
        problems.append(
            f"robust cost {costs['robust']:,.0f} exceeds iris "
            f"{costs['iris']:,.0f} (ensemble escaped the hose envelope)"
        )
    if fct["robust_reconfigurations"] != 0:
        problems.append("robust-static fabric reported reconfigurations")
    return problems


def _bench_json(path: str, measured: dict) -> int:
    """Append one ``kind: robust_tm`` row to the shared trajectory file."""
    import json

    from repro import __version__

    costs = measured["costs"]
    row = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "kind": "robust_tm",
        "version": __version__,
        "region": dict(GOLDEN_REGION),
        "ensemble": {
            "count": TrafficEnsembleSpec().count,
            "seed": TrafficEnsembleSpec().seed,
        },
        "cost_total": {k: round(v, 2) for k, v in costs.items()},
        "cost_over_iris": {
            k: round(v / costs["iris"], 4) for k, v in costs.items()
        },
        "fct": {
            "iris_p99": round(measured["fct"]["iris_p99"], 6),
            "robust_p99": round(measured["fct"]["robust_p99"], 6),
            "iris_reconfigurations": int(
                measured["fct"]["iris_reconfigurations"]
            ),
            "robust_reconfigurations": int(
                measured["fct"]["robust_reconfigurations"]
            ),
            "sim_duration_s": measured["sim_duration_s"],
        },
        "plan_s": measured["plan_s"],
        "sim_s": measured["sim_s"],
    }

    target = Path(path)
    if target.exists():
        payload = json.loads(target.read_text())
        if payload.get("schema_version") != BENCH_SCHEMA_VERSION:
            print(f"BENCH GATE FAILED: {path} has schema_version "
                  f"{payload.get('schema_version')!r}, expected "
                  f"{BENCH_SCHEMA_VERSION}")
            return 1
    else:
        payload = {"schema_version": BENCH_SCHEMA_VERSION, "rows": []}
    payload["rows"].append(row)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"robust_tm row appended to {path} ({len(payload['rows'])} row(s))")
    return 0


if __name__ == "__main__":
    import argparse
    import sys

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="run the quick cost+FCT pass and exit")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="append a robust_tm trajectory row to the "
                             "shared BENCH_planner.json file")
    cli_args = parser.parse_args()
    if not cli_args.smoke and not cli_args.json:
        parser.error("this entry point supports --smoke and/or --json; "
                     "use pytest for the full benchmarks")
    measured = _measure(smoke=cli_args.smoke)
    _print_summary(measured)
    problems = _gate(measured)
    for problem in problems:
        print(f"BENCH GATE FAILED: {problem}")
    status = 1 if problems else 0
    if status == 0 and cli_args.json:
        status = _bench_json(cli_args.json, measured)
    sys.exit(status)
