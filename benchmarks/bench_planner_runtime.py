"""§4.3: planner runtime.

Paper: the heuristics "still execute within a few minutes for even large
region sizes with 20 DCs", running once at provisioning time. This bench
times the full pipeline (Algorithm 1 with 2-cut enumeration, amplifier and
cut-through placement, residual provisioning) at a mid-size region and
asserts the paper's budget holds with generous margin.
"""

import os

from repro.core.planner import plan_region
from repro.region.catalog import make_region


def plan_mid_region():
    instance = make_region(map_index=2, n_dcs=10, dc_fibers=8)
    return plan_region(instance.spec)


def test_planner_runtime(benchmark, report):
    plan = benchmark.pedantic(plan_mid_region, rounds=1, iterations=1)
    seconds = benchmark.stats.stats.mean

    report("§4.3   planner runtime (10-DC region, tolerance 2)")
    report(f"        wall time             paper 'minutes' (20 DCs)   "
           f"measured {seconds:.1f} s (10 DCs)")
    report(f"        scenarios enumerated  {len(plan.topology.scenario_paths)} "
           f"(pruned from {plan.topology.scenario_count_total})")

    assert plan.validate() == []
    assert seconds < 300.0

    if os.environ.get("REPRO_FULL_SCALE"):
        import time

        t0 = time.time()
        instance = make_region(map_index=1, n_dcs=20, dc_fibers=8)
        big = plan_region(instance.spec)
        elapsed = time.time() - t0
        report(f"        20-DC full scale      paper minutes  measured "
               f"{elapsed / 60:.1f} min")
        assert big.validate() == []
