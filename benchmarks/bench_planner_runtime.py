"""§4.3: planner runtime.

Paper: the heuristics "still execute within a few minutes for even large
region sizes with 20 DCs", running once at provisioning time. This bench
times the full pipeline (Algorithm 1 with 2-cut enumeration, amplifier and
cut-through placement, residual provisioning) at a mid-size region and
asserts the paper's budget holds with generous margin. Per-phase wall
times come from :func:`repro.obs.profile_plan` rather than stopwatching
around the call, so the report attributes runtime to the phase that spent
it.

Run directly for a CI smoke pass that emits the JSON trace::

    PYTHONPATH=src python benchmarks/bench_planner_runtime.py --smoke \\
        --trace-json planner_trace.jsonl
"""

import os
import time
from pathlib import Path

from repro.core.planner import plan_region
from repro.obs import profile_plan
from repro.region.catalog import make_region

REPO_ROOT = Path(__file__).resolve().parents[1]

#: reprolint budget: review-time analysis must stay interactive and cheap
#: enough to gate CI; ~5s covers the full repo with a wide margin today.
REPROLINT_BUDGET_S = 5.0


def plan_mid_region():
    instance = make_region(map_index=2, n_dcs=10, dc_fibers=8)
    return plan_region(instance.spec)


def test_planner_runtime(benchmark, report):
    plan = benchmark.pedantic(plan_mid_region, rounds=1, iterations=1)
    seconds = benchmark.stats.stats.mean

    report("§4.3   planner runtime (10-DC region, tolerance 2)")
    report(f"        wall time             paper 'minutes' (20 DCs)   "
           f"measured {seconds:.1f} s (10 DCs)")
    report(f"        scenarios enumerated  {len(plan.topology.scenario_paths)} "
           f"(pruned from {plan.topology.scenario_count_total})")

    assert plan.validate() == []
    assert seconds < 300.0


def test_planner_phase_profile(report):
    """Where does planning time go? Per-phase breakdown via repro.obs."""
    instance = make_region(map_index=0, n_dcs=5, dc_fibers=8)
    result = profile_plan(instance.spec)

    total_s = result.trace.duration_s
    report("§4.3   planner phase profile (5-DC region, jobs=1)")
    for row in result.phases:
        # Top-level phases only; the per-level enumerate spans are in the
        # full trace (--smoke --trace-json) but would double-count here.
        if not row.name.startswith("plan.") or "level[" in row.name:
            continue
        share = row.total_s / total_s if total_s > 0 else 0.0
        report(f"        {row.name:<22}{row.total_s * 1000:8.1f} ms"
               f"  ({share:5.1%} of {total_s:.2f} s)")
    report(f"        scenarios evaluated   {result.total('scenarios.evaluated'):.0f}"
           f"   hose lookups {result.total('hose.lookups'):.0f}")

    assert result.plan.validate() == []
    # The capacity phase dominates Algorithm 1; it must show up.
    phase_names = {row.name for row in result.phases}
    assert {"plan.enumerate", "plan.capacity"} <= phase_names

    if os.environ.get("REPRO_FULL_SCALE"):
        t0 = time.time()
        instance = make_region(map_index=1, n_dcs=20, dc_fibers=8)
        big = plan_region(instance.spec)
        elapsed = time.time() - t0
        report(f"        20-DC full scale      paper minutes  measured "
               f"{elapsed / 60:.1f} min")
        assert big.validate() == []


def test_planner_serial_vs_parallel(report):
    """Scenario-parallel engine: jobs=N must match jobs=1 bit-for-bit, and
    on a multi-core box the 10-DC plan should go meaningfully faster."""
    instance = make_region(map_index=2, n_dcs=10, dc_fibers=8)
    cores = os.cpu_count() or 1
    jobs = min(4, cores) if cores >= 2 else 2

    t0 = time.time()
    serial = plan_region(instance.spec, jobs=1)
    serial_s = time.time() - t0

    t0 = time.time()
    parallel = plan_region(instance.spec, jobs=jobs)
    parallel_s = time.time() - t0

    assert serial.topology == parallel.topology
    assert serial.inventory() == parallel.inventory()

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    timings = parallel.topology.timings
    report("§4.3   planner parallel speedup (10-DC region)")
    report(f"        serial jobs=1         {serial_s:.1f} s   "
           f"({serial.topology.timings.summary()})")
    report(f"        parallel jobs={jobs}       {parallel_s:.1f} s   "
           f"({timings.summary()})")
    report(f"        speedup               {speedup:.2f}x on {cores} core(s)")

    # The ISSUE acceptance floor (>=1.8x at jobs=4) only applies where the
    # hardware can deliver it; single-core boxes pay pure pool overhead.
    if cores >= 4 and jobs >= 4:
        assert speedup >= 1.8


def _run_reprolint():
    """Time a full-repo reprolint pass; returns (seconds, findings, files)."""
    from repro.lint import iter_python_files, lint_paths

    roots = [REPO_ROOT / "src", REPO_ROOT / "tests", REPO_ROOT / "benchmarks"]
    n_files = len(iter_python_files(roots))
    t0 = time.perf_counter()
    findings = lint_paths(roots)
    return time.perf_counter() - t0, findings, n_files


def test_reprolint_runtime(report):
    """Static analysis is a CI gate; a gate slower than the tests it guards
    stops being run. The full-repo pass must stay under ~5 s."""
    seconds, findings, n_files = _run_reprolint()
    src_findings = [f for f in findings if "src" in Path(f.path).parts]

    report("lint   reprolint full-repo pass (src + tests + benchmarks)")
    report(f"        wall time             budget {REPROLINT_BUDGET_S:.0f} s"
           f"   measured {seconds:.2f} s ({n_files} files)")
    report(f"        findings              src {len(src_findings)}"
           f"   elsewhere {len(findings) - len(src_findings)}")

    assert seconds < REPROLINT_BUDGET_S
    # The shipped source tree is the gated surface and must be clean.
    assert src_findings == []


def _smoke(trace_json: str | None) -> int:
    """CI smoke: profile a small region, print the phase table, dump trace."""
    from repro.obs import write_trace_json

    instance = make_region(map_index=0, n_dcs=5, dc_fibers=8)
    result = profile_plan(instance.spec)
    problems = result.plan.validate()

    print(result.render())
    print()
    for row in result.csv_rows():
        print(",".join(row))
    if trace_json:
        write_trace_json(trace_json, result.trace)
        print(f"\ntrace written to {trace_json}")

    lint_s, findings, n_files = _run_reprolint()
    src_findings = [f for f in findings if "src" in Path(f.path).parts]
    print(f"\nreprolint: {n_files} files in {lint_s:.2f} s "
          f"(budget {REPROLINT_BUDGET_S:.0f} s), "
          f"{len(src_findings)} src finding(s)")

    if problems:
        print(f"PLAN INVALID: {problems[:3]}")
        return 1
    if src_findings or lint_s >= REPROLINT_BUDGET_S:
        for finding in src_findings[:5]:
            print(finding.format())
        print("REPROLINT GATE FAILED")
        return 1
    return 0


if __name__ == "__main__":
    import argparse
    import sys

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="run the quick profiling smoke pass and exit")
    parser.add_argument("--trace-json", metavar="PATH", default=None,
                        help="also write the span trace as JSON lines")
    cli_args = parser.parse_args()
    if not cli_args.smoke:
        parser.error("this entry point only supports --smoke; "
                     "use pytest for the full benchmarks")
    sys.exit(_smoke(cli_args.trace_json))
