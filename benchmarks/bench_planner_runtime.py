"""§4.3: planner runtime.

Paper: the heuristics "still execute within a few minutes for even large
region sizes with 20 DCs", running once at provisioning time. This bench
times the full pipeline (Algorithm 1 with 2-cut enumeration, amplifier and
cut-through placement, residual provisioning) at a mid-size region and
asserts the paper's budget holds with generous margin.
"""

import os
import time

from repro.core.planner import plan_region
from repro.region.catalog import make_region


def plan_mid_region():
    instance = make_region(map_index=2, n_dcs=10, dc_fibers=8)
    return plan_region(instance.spec)


def test_planner_runtime(benchmark, report):
    plan = benchmark.pedantic(plan_mid_region, rounds=1, iterations=1)
    seconds = benchmark.stats.stats.mean

    report("§4.3   planner runtime (10-DC region, tolerance 2)")
    report(f"        wall time             paper 'minutes' (20 DCs)   "
           f"measured {seconds:.1f} s (10 DCs)")
    report(f"        scenarios enumerated  {len(plan.topology.scenario_paths)} "
           f"(pruned from {plan.topology.scenario_count_total})")

    assert plan.validate() == []
    assert seconds < 300.0

    if os.environ.get("REPRO_FULL_SCALE"):
        t0 = time.time()
        instance = make_region(map_index=1, n_dcs=20, dc_fibers=8)
        big = plan_region(instance.spec)
        elapsed = time.time() - t0
        report(f"        20-DC full scale      paper minutes  measured "
               f"{elapsed / 60:.1f} min")
        assert big.validate() == []


def test_planner_serial_vs_parallel(report):
    """Scenario-parallel engine: jobs=N must match jobs=1 bit-for-bit, and
    on a multi-core box the 10-DC plan should go meaningfully faster."""
    instance = make_region(map_index=2, n_dcs=10, dc_fibers=8)
    cores = os.cpu_count() or 1
    jobs = min(4, cores) if cores >= 2 else 2

    t0 = time.time()
    serial = plan_region(instance.spec, jobs=1)
    serial_s = time.time() - t0

    t0 = time.time()
    parallel = plan_region(instance.spec, jobs=jobs)
    parallel_s = time.time() - t0

    assert serial.topology == parallel.topology
    assert serial.inventory() == parallel.inventory()

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    timings = parallel.topology.timings
    report("§4.3   planner parallel speedup (10-DC region)")
    report(f"        serial jobs=1         {serial_s:.1f} s   "
           f"({serial.topology.timings.summary()})")
    report(f"        parallel jobs={jobs}       {parallel_s:.1f} s   "
           f"({timings.summary()})")
    report(f"        speedup               {speedup:.2f}x on {cores} core(s)")

    # The ISSUE acceptance floor (>=1.8x at jobs=4) only applies where the
    # hardware can deliver it; single-core boxes pay pure pool overhead.
    if cores >= 4 and jobs >= 4:
        assert speedup >= 1.8
