"""§4.3: planner runtime.

Paper: the heuristics "still execute within a few minutes for even large
region sizes with 20 DCs", running once at provisioning time. This bench
times the full pipeline (Algorithm 1 with 2-cut enumeration, amplifier and
cut-through placement, residual provisioning) at a mid-size region and
asserts the paper's budget holds with generous margin. Per-phase wall
times come from :func:`repro.obs.profile_plan` rather than stopwatching
around the call, so the report attributes runtime to the phase that spent
it.

Run directly for a CI smoke pass that emits the JSON trace::

    PYTHONPATH=src python benchmarks/bench_planner_runtime.py --smoke \\
        --trace-json planner_trace.jsonl

or to append a trajectory row to the committed benchmark file (and gate
on the golden hose-solve counts)::

    PYTHONPATH=src python benchmarks/bench_planner_runtime.py \\
        --json BENCH_planner.json
"""

import os
import time
from pathlib import Path

from repro.core.planner import _plan_region, plan_region
from repro.obs import profile_plan
from repro.region.catalog import make_region

REPO_ROOT = Path(__file__).resolve().parents[1]

#: reprolint budget: review-time analysis must stay interactive and cheap
#: enough to gate CI; ~5s covers the full repo with a wide margin today.
REPROLINT_BUDGET_S = 5.0

#: ``BENCH_planner.json`` row layout version (bump on breaking changes).
BENCH_SCHEMA_VERSION = 1

#: The golden region (tests/test_golden.py) the trajectory tracks.
GOLDEN_REGION = {"map_index": 0, "n_dcs": 5, "dc_fibers": 8}

#: Pinned golden work counts: the CI gate fails when a row exceeds them.
GOLDEN_HOSE_LOOKUPS = 15762
GOLDEN_HOSE_MISSES = 92
GOLDEN_COLD_SOLVES = 7


def plan_mid_region():
    instance = make_region(map_index=2, n_dcs=10, dc_fibers=8)
    return plan_region(instance.spec)


def test_planner_runtime(benchmark, report):
    plan = benchmark.pedantic(plan_mid_region, rounds=1, iterations=1)
    seconds = benchmark.stats.stats.mean

    report("§4.3   planner runtime (10-DC region, tolerance 2)")
    report(f"        wall time             paper 'minutes' (20 DCs)   "
           f"measured {seconds:.1f} s (10 DCs)")
    report(f"        scenarios enumerated  {len(plan.topology.scenario_paths)} "
           f"(pruned from {plan.topology.scenario_count_total})")

    assert plan.validate() == []
    assert seconds < 300.0


def test_planner_phase_profile(report):
    """Where does planning time go? Per-phase breakdown via repro.obs."""
    instance = make_region(map_index=0, n_dcs=5, dc_fibers=8)
    result = profile_plan(instance.spec)

    total_s = result.trace.duration_s
    report("§4.3   planner phase profile (5-DC region, jobs=1)")
    for row in result.phases:
        # Top-level phases only; the per-level enumerate spans are in the
        # full trace (--smoke --trace-json) but would double-count here.
        if not row.name.startswith("plan.") or "level[" in row.name:
            continue
        share = row.total_s / total_s if total_s > 0 else 0.0
        report(f"        {row.name:<22}{row.total_s * 1000:8.1f} ms"
               f"  ({share:5.1%} of {total_s:.2f} s)")
    report(f"        scenarios evaluated   {result.total('scenarios.evaluated'):.0f}"
           f"   hose lookups {result.total('hose.lookups'):.0f}")

    assert result.plan.validate() == []
    # The capacity phase dominates Algorithm 1; it must show up.
    phase_names = {row.name for row in result.phases}
    assert {"plan.enumerate", "plan.capacity"} <= phase_names

    if os.environ.get("REPRO_FULL_SCALE"):
        t0 = time.perf_counter()
        instance = make_region(map_index=1, n_dcs=20, dc_fibers=8)
        big = plan_region(instance.spec)
        elapsed = time.perf_counter() - t0
        report(f"        20-DC full scale      paper minutes  measured "
               f"{elapsed / 60:.1f} min")
        assert big.validate() == []


def test_planner_serial_vs_parallel(report):
    """Scenario-parallel engine: jobs=N must match jobs=1 bit-for-bit, and
    on a multi-core box the 10-DC plan should go meaningfully faster."""
    instance = make_region(map_index=2, n_dcs=10, dc_fibers=8)
    cores = os.cpu_count() or 1
    jobs = min(4, cores) if cores >= 2 else 2

    t0 = time.perf_counter()
    serial = _plan_region(instance.spec, jobs=1)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = _plan_region(instance.spec, jobs=jobs)
    parallel_s = time.perf_counter() - t0

    assert serial.topology == parallel.topology
    assert serial.inventory() == parallel.inventory()

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    timings = parallel.topology.timings
    report("§4.3   planner parallel speedup (10-DC region)")
    report(f"        serial jobs=1         {serial_s:.1f} s   "
           f"({serial.topology.timings.summary()})")
    report(f"        parallel jobs={jobs}       {parallel_s:.1f} s   "
           f"({timings.summary()})")
    report(f"        speedup               {speedup:.2f}x on {cores} core(s)")

    # The ISSUE acceptance floor (>=1.8x at jobs=4) only applies where the
    # hardware can deliver it; single-core boxes pay pure pool overhead.
    if cores >= 4 and jobs >= 4:
        assert speedup >= 1.8


def _run_reprolint():
    """Time a full-repo reprolint pass; returns (seconds, findings, files)."""
    from repro.lint import iter_python_files, lint_paths

    roots = [REPO_ROOT / "src", REPO_ROOT / "tests", REPO_ROOT / "benchmarks"]
    n_files = len(iter_python_files(roots))
    t0 = time.perf_counter()
    findings = lint_paths(roots)
    return time.perf_counter() - t0, findings, n_files


def test_reprolint_runtime(report):
    """Static analysis is a CI gate; a gate slower than the tests it guards
    stops being run. The full-repo pass must stay under ~5 s."""
    seconds, findings, n_files = _run_reprolint()
    src_findings = [f for f in findings if "src" in Path(f.path).parts]

    report("lint   reprolint full-repo pass (src + tests + benchmarks)")
    report(f"        wall time             budget {REPROLINT_BUDGET_S:.0f} s"
           f"   measured {seconds:.2f} s ({n_files} files)")
    report(f"        findings              src {len(src_findings)}"
           f"   elsewhere {len(findings) - len(src_findings)}")

    assert seconds < REPROLINT_BUDGET_S
    # The shipped source tree is the gated surface and must be clean.
    assert src_findings == []


def _smoke(trace_json: str | None) -> int:
    """CI smoke: profile a small region, print the phase table, dump trace."""
    from repro.obs import write_trace_json

    instance = make_region(map_index=0, n_dcs=5, dc_fibers=8)
    result = profile_plan(instance.spec)
    problems = result.plan.validate()

    print(result.render())
    print()
    for row in result.csv_rows():
        print(",".join(row))
    if trace_json:
        write_trace_json(trace_json, result.trace)
        print(f"\ntrace written to {trace_json}")

    lint_s, findings, n_files = _run_reprolint()
    src_findings = [f for f in findings if "src" in Path(f.path).parts]
    print(f"\nreprolint: {n_files} files in {lint_s:.2f} s "
          f"(budget {REPROLINT_BUDGET_S:.0f} s), "
          f"{len(src_findings)} src finding(s)")

    if problems:
        print(f"PLAN INVALID: {problems[:3]}")
        return 1
    if src_findings or lint_s >= REPROLINT_BUDGET_S:
        for finding in src_findings[:5]:
            print(finding.format())
        print("REPROLINT GATE FAILED")
        return 1
    return 0


def _measure_golden(incremental: bool, rounds: int = 3) -> tuple:
    """Best-of-``rounds`` cold-cache traced plans of the golden region.

    Returns ``(wall_s, ProfileResult, HoseCacheStats)`` for the fastest
    round (standard practice: the minimum is the least noise-polluted
    sample; the work counters are identical across rounds because every
    round starts from a cleared cache). ``incremental=False`` disables
    residual-state repair (every miss solves cold) to measure the
    pre-incremental baseline on identical hardware.
    """
    from repro.core.hose import (
        clear_hose_cache,
        configure_hose_cache,
        hose_cache_stats,
    )

    instance = make_region(**GOLDEN_REGION)
    best: tuple | None = None
    for _ in range(rounds):
        if incremental:
            clear_hose_cache()  # fresh cache at the env/default bounds
        else:
            configure_hose_cache(state_maxsize=0)
        t0 = time.perf_counter()
        result = profile_plan(instance.spec)
        wall_s = time.perf_counter() - t0
        if best is None or wall_s < best[0]:
            best = (wall_s, result, hose_cache_stats())
    return best


def _bench_json(path: str) -> int:
    """Append one trajectory row to ``path`` and gate on golden counts.

    The file is ``{"schema_version": 1, "rows": [...]}``; each run
    appends one row, so the committed file accumulates a PR-over-PR
    runtime trajectory for the same golden region. Exits non-zero when
    the measured hose-solve counts regress above the golden baseline
    (more lookups, misses, or cold solves than the pinned values).
    """
    import json

    from repro import __version__

    baseline_s, baseline_result, baseline_stats = _measure_golden(
        incremental=False
    )
    wall_s, result, stats = _measure_golden(incremental=True)

    def _phase_table(profile) -> dict[str, float]:
        return {
            row.name: round(row.total_s, 4)
            for row in profile.phases
            if row.name.startswith("plan.") and "level[" not in row.name
        }

    phases_s = _phase_table(result)
    baseline_phases_s = _phase_table(baseline_result)
    capacity_s = phases_s.get("plan.capacity", 0.0)
    baseline_capacity_s = baseline_phases_s.get("plan.capacity", 0.0)
    row = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "version": __version__,
        "region": dict(GOLDEN_REGION),
        "jobs": 1,
        "backend": "serial",
        "scenarios": int(result.total("scenarios.evaluated")),
        "hose": {
            "lookups": int(result.total("hose.lookups")),
            "hits": stats.hits,
            "misses": stats.misses,
            "cold_solves": stats.cold_solves,
            "incremental_solves": stats.incremental_solves,
        },
        "phases_s": phases_s,
        "wall_s": round(wall_s, 4),
        "wall_noincremental_s": round(baseline_s, 4),
        "speedup_vs_noincremental": round(baseline_s / wall_s, 3)
        if wall_s > 0
        else float("inf"),
        "capacity_s_noincremental": baseline_capacity_s,
        "speedup_capacity": round(baseline_capacity_s / capacity_s, 3)
        if capacity_s > 0
        else float("inf"),
    }

    target = Path(path)
    if target.exists():
        payload = json.loads(target.read_text())
        if payload.get("schema_version") != BENCH_SCHEMA_VERSION:
            print(f"BENCH GATE FAILED: {path} has schema_version "
                  f"{payload.get('schema_version')!r}, expected "
                  f"{BENCH_SCHEMA_VERSION}")
            return 1
    else:
        payload = {"schema_version": BENCH_SCHEMA_VERSION, "rows": []}
    payload["rows"].append(row)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    hose = row["hose"]
    print(f"BENCH_planner row appended to {path} "
          f"({len(payload['rows'])} row(s))")
    print(f"  scenarios {row['scenarios']}, hose lookups {hose['lookups']}, "
          f"misses {hose['misses']} ({hose['cold_solves']} cold / "
          f"{hose['incremental_solves']} incremental)")
    print(f"  wall {row['wall_s']:.2f} s vs {row['wall_noincremental_s']:.2f} s "
          f"non-incremental ({row['speedup_vs_noincremental']:.2f}x), "
          f"baseline misses all-cold: {baseline_stats.cold_solves}")

    problems = []
    if hose["lookups"] != GOLDEN_HOSE_LOOKUPS:
        problems.append(
            f"hose lookups {hose['lookups']} != golden {GOLDEN_HOSE_LOOKUPS}"
        )
    if hose["misses"] > GOLDEN_HOSE_MISSES:
        problems.append(
            f"hose misses {hose['misses']} > golden {GOLDEN_HOSE_MISSES}"
        )
    if hose["cold_solves"] > GOLDEN_COLD_SOLVES:
        problems.append(
            f"cold solves {hose['cold_solves']} > golden {GOLDEN_COLD_SOLVES}"
        )
    if result.plan.validate():
        problems.append("plan failed validation")
    for problem in problems:
        print(f"BENCH GATE FAILED: {problem}")
    return 1 if problems else 0


if __name__ == "__main__":
    import argparse
    import sys

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="run the quick profiling smoke pass and exit")
    parser.add_argument("--trace-json", metavar="PATH", default=None,
                        help="also write the span trace as JSON lines")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="append a BENCH_planner.json trajectory row "
                             "and gate on the golden hose-solve counts")
    cli_args = parser.parse_args()
    if not cli_args.smoke and not cli_args.json:
        parser.error("this entry point supports --smoke and/or --json; "
                     "use pytest for the full benchmarks")
    status = 0
    if cli_args.smoke:
        status = _smoke(cli_args.trace_json)
    if status == 0 and cli_args.json:
        status = _bench_json(cli_args.json)
    sys.exit(status)
