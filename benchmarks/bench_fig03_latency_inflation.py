"""Fig 3: CDF of latency inflation, DC-hub-DC over direct DC-DC.

Paper: across 22 Azure regions, hub paths inflate latency for at least 60%
of DC pairs, and by more than 2x for over 20% of them.
"""

from repro.analysis.latency import fraction_at_least, latency_inflation_ratios
from repro.region.catalog import region_ensemble

from conftest import median


def build_ratios():
    instances = region_ensemble(count=22, n_dcs_range=(5, 12))
    return latency_inflation_ratios(instances)


def test_fig03_latency_inflation(benchmark, report):
    ratios = benchmark.pedantic(build_ratios, rounds=1, iterations=1)
    inflated = fraction_at_least(ratios, 1.0 + 1e-9)
    twofold = fraction_at_least(ratios, 2.0)
    med = median(ratios)

    report("Fig 3  latency inflation (22 synthetic regions, "
           f"{len(ratios)} DC pairs)")
    report(f"        paths inflated        paper >=60%   measured {inflated * 100:.0f}%")
    report(f"        inflation > 2x        paper >20%    measured {twofold * 100:.0f}%")
    report(f"        median inflation      paper ~1.4x   measured {med:.2f}x")

    # Shape assertions from the paper's reading of the figure.
    assert inflated >= 0.60
    assert twofold > 0.10
