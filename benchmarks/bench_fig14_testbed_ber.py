"""Fig 14: pre-FEC BER across periodic reconfigurations on the testbed.

Paper: BER stays well below the 2e-2 SD-FEC threshold (post-FEC < 1e-15)
over day-long runs with reconfiguration every minute; signal recovery takes
50 ms (70 ms when two huts switch).
"""

from repro.testbed.experiments import run_reconfiguration_experiment
from repro.units import FEC_BER_THRESHOLD


def run_experiments():
    one_hut = run_reconfiguration_experiment(
        duration_s=300.0, reconfig_period_s=60.0, sample_interval_s=0.01
    )
    two_hut = run_reconfiguration_experiment(
        duration_s=120.0,
        reconfig_period_s=60.0,
        sample_interval_s=0.01,
        two_huts=True,
    )
    return one_hut, two_hut


def test_fig14_testbed_ber(benchmark, report):
    one_hut, two_hut = benchmark.pedantic(run_experiments, rounds=1, iterations=1)

    report("Fig 14 BER under periodic reconfiguration (emulated testbed)")
    report(f"        max pre-FEC BER       paper <2e-2   measured "
           f"{one_hut.max_prefec_ber:.1e}")
    report(f"        post-FEC error-free   paper yes     measured "
           f"{one_hut.always_below_threshold}")
    report(f"        recovery, one hut     paper 50 ms   measured "
           f"{one_hut.recovery_time_s * 1000:.0f} ms")
    report(f"        recovery, two huts    paper 70 ms   measured "
           f"{two_hut.recovery_time_s * 1000:.0f} ms")
    report(f"        availability          paper ~99.9%  measured "
           f"{one_hut.availability() * 100:.3f}%")

    assert one_hut.always_below_threshold
    assert one_hut.max_prefec_ber < FEC_BER_THRESHOLD / 10
    assert one_hut.recovery_time_s == 0.050
    assert two_hut.recovery_time_s == 0.070
