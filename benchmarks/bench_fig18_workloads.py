"""Fig 18: slowdown across flow-size workloads.

Paper: at 40% utilization, 50% traffic changes, and reconfiguration every
5 s, the 99th-percentile slowdown of Iris over EPS is below ~2% for all of
web1 (pFabric web search), web2, hadoop, and cache (Facebook) — including
the short flows that circuit reconfiguration would hurt most.
"""

from repro.simulation.scenarios import ScenarioConfig, run_comparison
from repro.simulation.workloads import WORKLOADS


def run_workloads():
    out = {}
    for name in sorted(WORKLOADS):
        config = ScenarioConfig(
            n_dcs=5,
            utilization=0.4,
            workload=name,
            duration_s=20.0,
            change_interval_s=5.0,
            max_change=0.5,
            seed=18,
        )
        out[name] = run_comparison(config).summary
    return out


def test_fig18_workloads(benchmark, report):
    summaries = benchmark.pedantic(run_workloads, rounds=1, iterations=1)

    report("Fig 18 slowdown per workload (40% util, 50% changes, 5 s)")
    report(f"        {'workload':<10}{'p99 all':>9}{'p99 short':>11}{'flows':>9}")
    for name, s in summaries.items():
        report(f"        {name:<10}{s.p99_all:>9.3f}{s.p99_short:>11.3f}"
               f"{s.iris_flows:>9}")
    report("        paper: <2% slowdown for all workloads")

    for name, s in summaries.items():
        # Allow 6% for the reduced scale (paper: 2% at full scale).
        assert s.p99_all <= 1.06, name
        assert s.p99_short <= 1.10, name
