"""§3.4 / Fig 10: the motivating cost example, end to end.

Paper: on the semi-distributed 4-DC topology, the electrical design needs
F_E = 60 fiber-pairs and T_E = 4800 transceivers vs T_O = 1600 for Iris,
making electrical ~2.7x costlier (2.73 with fiber+transceivers only).
"""

import pytest

from repro.analysis.toy import toy_example_summary


def test_toy_example(benchmark, report):
    summary = benchmark(toy_example_summary)

    report("§3.4   toy example (4 DCs x 160 Tbps, Fig 10 topology)")
    report(f"        EPS fiber-pairs       paper 60      measured {summary.eps_fiber_pairs}")
    report(f"        EPS transceivers      paper 4800    measured {summary.eps_transceivers}")
    report(f"        Iris transceivers     paper 1600    measured {summary.iris_transceivers}")
    report(f"        Iris fiber-pairs      paper 78      measured "
           f"{summary.iris_fiber_pairs} (residual rule, see DESIGN.md)")
    report(f"        EPS/Iris cost         paper 2.7x    measured {summary.cost_ratio:.2f}x")
    report(f"        fiber+xcvr only       paper 2.73x   measured "
           f"{summary.simplified_cost_ratio:.2f}x")

    assert summary.eps_fiber_pairs == 60
    assert summary.eps_transceivers == 4800
    assert summary.iris_transceivers == 1600
    assert summary.cost_ratio == pytest.approx(2.7, abs=0.45)
    assert summary.simplified_cost_ratio == pytest.approx(2.73, abs=0.05)
