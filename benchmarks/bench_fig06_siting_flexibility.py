"""Fig 6: siting-area gain of the distributed design across regions.

Paper: the permissible area for one new DC increases 2-5x across 33
existing regions; regions with more DCs show smaller but still >=2x gains.
"""

from repro.analysis.flexibility import flexibility_gains
from repro.region.catalog import region_ensemble

from conftest import fraction, median


def build_gains():
    instances = region_ensemble(count=33, n_dcs_range=(5, 15))
    return flexibility_gains(instances, spacing_km=4.0)


def test_fig06_siting_flexibility(benchmark, report):
    gains = benchmark.pedantic(build_gains, rounds=1, iterations=1)
    values = [g for _, g in gains]
    med = median(values)
    in_band = fraction(values, lambda v: 2.0 <= v <= 5.0)

    report("Fig 6  siting-area gain, distributed vs centralized (33 regions)")
    report(f"        gain range            paper 2-5x    measured "
           f"{min(values):.1f}-{max(values):.1f}x")
    report(f"        median gain           paper ~3x     measured {med:.1f}x")
    report(f"        regions in 2-5x band  paper all     measured {in_band * 100:.0f}%")

    assert med >= 1.8
    assert all(v >= 1.0 for v in values)
    assert in_band >= 0.5
