"""Appendix B: hybrid wavelength switching of residual fibers.

Paper: combining residual fibers with wavelength switching "managed to
reduce the residual fiber overhead by approximately 50%", any n residual
fibers from one source combine into ceil(n/4), and — decisive for Iris —
the savings do not justify the extra device class at current prices
(Fig 12a: EPS/Hybrid ~= EPS/Iris).
"""

import pytest

from repro.cost.estimator import estimate_cost
from repro.designs.hybrid import hybridize
from repro.designs.wavelength import (
    combinable_residual_fibers,
    max_worst_case_residual_wavelengths,
    wavelength_vs_fiber_tradeoff,
)

from conftest import median


def test_appendix_b_hybrid(benchmark, sample_plans, report):
    hybrids = benchmark(lambda: [hybridize(p) for p in sample_plans])

    reductions = [h.residual_reduction for h in hybrids]
    report("App B  hybrid residual-fiber combining")
    for plan, hybrid in zip(sample_plans, hybrids):
        n = len(plan.region.dcs)
        report(f"        {n} DCs: residual spans {hybrid.residual_spans_before} "
               f"-> saved {hybrid.residual_spans_saved} "
               f"({hybrid.residual_reduction * 100:.0f}%), "
               f"{len(hybrid.merges)} merges")
    report(f"        median reduction      paper ~50%    measured "
           f"{median(reductions) * 100:.0f}% (synthetic maps share shorter "
           "prefixes; see EXPERIMENTS.md)")

    # Observation 2 arithmetic.
    assert combinable_residual_fibers(4) == 1
    assert combinable_residual_fibers(7) == 2
    assert max_worst_case_residual_wavelengths(8, 40) == pytest.approx(80.0)
    report("        ceil(n/4) combining   paper yes     measured yes")

    # Pure wavelength switching loses to fiber switching at these prices.
    tradeoffs = [wavelength_vs_fiber_tradeoff(p) for p in sample_plans]
    wins = sum(1 for t in tradeoffs if t.fiber_switching_wins)
    report(f"        fiber switching wins  paper all     measured "
           f"{wins}/{len(tradeoffs)}")

    assert median(reductions) >= 0.2
    assert all(t.fiber_switching_wins for t in tradeoffs)

    # And the hybrid's total cost stays within a few % of Iris (Fig 12a).
    for plan, hybrid in zip(sample_plans, hybrids):
        iris_cost = estimate_cost(plan.inventory()).total
        hybrid_cost = estimate_cost(hybrid.inventory()).total
        assert hybrid_cost == pytest.approx(iris_cost, rel=0.1)
