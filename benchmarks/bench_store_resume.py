"""Artifact store: cold-vs-warm sweep and checkpoint overhead.

The paper notes planning "still executes within a few minutes for even
large region sizes" (§4.3) — per region. A Fig 12 campaign multiplies
that by hundreds of cells, which is what :mod:`repro.store` amortizes:
a warm store turns a sweep into pure pricing. This bench measures the
cold-vs-warm wall-time ratio and the cold-side checkpoint overhead, and
asserts the store's contract — the warm pass hits for **every** cell and
reproduces the cold records exactly.

Run directly for a CI smoke pass that emits the store stats artifact::

    PYTHONPATH=src python benchmarks/bench_store_resume.py --smoke \\
        --stats-json store_stats.json
"""

import tempfile
import time
from pathlib import Path

from repro.analysis.designspace import SweepPoint, run_sweep
from repro.store import PlanStore

REPO_ROOT = Path(__file__).resolve().parents[1]

#: A small grid with two distinct plan cells and a pricing-only repeat,
#: sized so both passes fit the CI smoke budget.
BENCH_POINTS = [
    SweepPoint(map_index=0, n_dcs=5, dc_fibers=8, wavelengths=40),
    SweepPoint(map_index=0, n_dcs=5, dc_fibers=8, wavelengths=64),
    SweepPoint(map_index=1, n_dcs=5, dc_fibers=8, wavelengths=40),
]


def _cold_warm(points, store_root):
    """Run the sweep cold then warm against one store; return the numbers."""
    store = PlanStore(store_root)
    t0 = time.perf_counter()
    cold = run_sweep(points, store=store)
    cold_s = time.perf_counter() - t0
    cells = store.puts

    t0 = time.perf_counter()
    warm = run_sweep(points, store=store)
    warm_s = time.perf_counter() - t0
    return store, cold, cold_s, cells, warm, warm_s


def test_warm_sweep_hits_every_cell(tmp_path, report):
    store, cold, cold_s, cells, warm, warm_s = _cold_warm(
        BENCH_POINTS, tmp_path
    )

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    report("store  cold-vs-warm sweep (3 points, 2 plan cells)")
    report(f"        cold (plan + put)     {cold_s:.2f} s   "
           f"{cells} cell(s) checkpointed")
    report(f"        warm (get + price)    {warm_s:.2f} s   "
           f"speedup {speedup:.1f}x")

    # The contract: every cell hits, nothing replans, records are equal.
    assert store.hits == cells
    assert store.misses == cells  # only the cold pass missed
    assert store.puts == cells
    assert warm == cold


def test_checkpoint_overhead_is_small(tmp_path, report):
    """Storing must not eat the planning budget it exists to save."""
    t0 = time.perf_counter()
    plain = run_sweep(BENCH_POINTS)
    plain_s = time.perf_counter() - t0

    store = PlanStore(tmp_path)
    t0 = time.perf_counter()
    stored = run_sweep(BENCH_POINTS, store=store)
    stored_s = time.perf_counter() - t0

    overhead = (stored_s - plain_s) / plain_s if plain_s > 0 else 0.0
    stats = store.stats()
    report("store  checkpoint overhead (cold sweep, store on vs off)")
    report(f"        no store              {plain_s:.2f} s")
    report(f"        cold store            {stored_s:.2f} s   "
           f"(+{overhead:.0%}, {stats.total_bytes / 1024:.0f} KiB written)")

    assert stored == plain
    # Serialization + fsync for a few cells must stay a small fraction of
    # planning time (generous bound: CI boxes have slow disks).
    assert stored_s < plain_s * 1.5 + 2.0


def _smoke(stats_json: str | None) -> int:
    """CI smoke: cold + warm sweep; warm must hit for every cell."""
    with tempfile.TemporaryDirectory() as tmp:
        store, cold, cold_s, cells, warm, warm_s = _cold_warm(
            BENCH_POINTS, tmp
        )
        stats = store.stats()

        print(f"cold sweep: {cold_s:.2f} s, {cells} cell(s) checkpointed, "
              f"{stats.total_bytes / 1024:.0f} KiB")
        print(f"warm sweep: {warm_s:.2f} s, {store.hits} hit(s), "
              f"{store.misses - cells} warm miss(es)")

        if stats_json:
            import json

            Path(stats_json).write_text(
                json.dumps(stats.to_dict(), indent=2, sort_keys=True)
            )
            print(f"store stats written to {stats_json}")

        if warm != cold:
            print("STORE PARITY FAILED: warm records differ from cold")
            return 1
        if store.hits != cells or store.misses != cells:
            print(f"STORE RESUME FAILED: {store.hits}/{cells} cells hit "
                  f"({store.misses - cells} unexpected miss(es))")
            return 1
    return 0


if __name__ == "__main__":
    import argparse
    import sys

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="run the quick cold/warm smoke pass and exit")
    parser.add_argument("--stats-json", metavar="PATH", default=None,
                        help="also write the store stats JSON artifact")
    cli_args = parser.parse_args()
    if not cli_args.smoke:
        parser.error("this entry point only supports --smoke; "
                     "use pytest for the full benchmarks")
    sys.exit(_smoke(cli_args.stats_json))
