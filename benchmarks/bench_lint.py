"""reprolint v3: cold-vs-warm full-repo lint through the artifact store.

The lint gate runs on every CI push, so its budget is part of the
development loop the same way the planner's minutes-per-region budget
(§4.3) is part of a capacity engineer's. v3 made the analysis
interprocedural — a project-wide call graph plus transitive effect
closure — which buys whole-program guarantees at parse-and-propagate
cost. The incremental cache (:mod:`repro.lint.project`) is what keeps
that affordable: phase-1 facts and per-file findings land in a
:class:`repro.store.PlanStore` keyed by source digest + rule-set version
with call-graph-aware invalidation, so a warm lint re-parses nothing.

This bench measures the cold and warm full-``src/`` passes, asserts the
cache contract — the warm pass *hits for every file* and reproduces the
cold findings exactly — and gates the CI budget: **cold < 5 s, warm <
0.5 s**. Rows append to the committed ``BENCH_planner.json`` trajectory
tagged ``kind: lint``.

Run directly for the CI smoke pass::

    PYTHONPATH=src python benchmarks/bench_lint.py --smoke \\
        --json BENCH_planner.json
"""

import tempfile
import time
from pathlib import Path

from repro.lint import iter_python_files, lint_paths
from repro.store import PlanStore

REPO_ROOT = Path(__file__).resolve().parents[1]

#: The tree the CI gate lints (and the one that must stay clean).
LINT_ROOT = REPO_ROOT / "src"

#: ``BENCH_planner.json`` row layout version (shared trajectory file;
#: this bench tags its rows with ``"kind": "lint"``).
BENCH_SCHEMA_VERSION = 1

#: CI budgets (seconds). Cold is the full parse + propagate + dispatch
#: pass; warm is pure store reads plus phase-2 graph math.
COLD_BUDGET_S = 5.0
WARM_BUDGET_S = 0.5


def _measure(store_root) -> dict:
    """Cold and warm full-tree lint against one store; all the numbers."""
    store = PlanStore(store_root)
    n_files = len(iter_python_files([LINT_ROOT]))

    t0 = time.perf_counter()
    cold = lint_paths([LINT_ROOT], report_unused_noqa=True, store=store)
    cold_s = time.perf_counter() - t0
    cold_stats = (store.hits, store.misses, store.puts)

    t0 = time.perf_counter()
    warm = lint_paths([LINT_ROOT], report_unused_noqa=True, store=store)
    warm_s = time.perf_counter() - t0
    warm_hits = store.hits - cold_stats[0]
    warm_misses = store.misses - cold_stats[1]
    warm_puts = store.puts - cold_stats[2]

    return {
        "n_files": n_files,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "cold_findings": cold,
        "warm_findings": warm,
        "cold_puts": cold_stats[2],
        "warm_hits": warm_hits,
        "warm_misses": warm_misses,
        "warm_puts": warm_puts,
    }


def _gate(measured: dict) -> list[str]:
    """Budget and cache-contract violations (empty = clean pass)."""
    problems = []
    if measured["cold_findings"] != measured["warm_findings"]:
        problems.append("warm findings differ from cold findings")
    if measured["warm_misses"] != 0:
        problems.append(
            f"warm lint missed the cache {measured['warm_misses']} time(s); "
            "expected hits for every unchanged file"
        )
    if measured["warm_puts"] != 0:
        problems.append(
            f"warm lint wrote {measured['warm_puts']} cache entries; "
            "an unchanged tree must write none"
        )
    # Every file contributes a phase-1 get and a findings get on the
    # warm pass; fewer hits means some path bypassed the cache.
    if measured["warm_hits"] < 2 * measured["n_files"]:
        problems.append(
            f"warm lint hit only {measured['warm_hits']} entries for "
            f"{measured['n_files']} files; expected two per file"
        )
    if measured["cold_s"] >= COLD_BUDGET_S:
        problems.append(
            f"cold full-repo lint took {measured['cold_s']:.2f} s "
            f"(budget {COLD_BUDGET_S:.1f} s)"
        )
    if measured["warm_s"] >= WARM_BUDGET_S:
        problems.append(
            f"warm full-repo lint took {measured['warm_s']:.2f} s "
            f"(budget {WARM_BUDGET_S:.1f} s)"
        )
    return problems


def _report_lines(measured: dict) -> list[str]:
    speedup = (
        measured["cold_s"] / measured["warm_s"]
        if measured["warm_s"] > 0
        else float("inf")
    )
    return [
        f"lint   cold-vs-warm full src/ pass ({measured['n_files']} files)",
        f"        cold (parse + cache)  {measured['cold_s']:.2f} s   "
        f"{measured['cold_puts']} entr(ies) written",
        f"        warm (store reads)    {measured['warm_s']:.2f} s   "
        f"{measured['warm_hits']} hit(s), {measured['warm_misses']} miss(es), "
        f"speedup {speedup:.1f}x",
        f"        findings              {len(measured['cold_findings'])} "
        "(identical across passes)",
    ]


def test_warm_lint_hits_every_file(tmp_path, report):
    measured = _measure(tmp_path)
    for line in _report_lines(measured):
        report(line)
    assert _gate(measured) == []


def test_editing_one_file_relint_is_scoped(tmp_path):
    """Changing one source invalidates it (and dependents), not the tree."""
    store = PlanStore(tmp_path)
    files = iter_python_files([LINT_ROOT])
    lint_paths([LINT_ROOT], report_unused_noqa=True, store=store)

    # Re-lint with one file's source logically changed by linting it
    # under a different path set: drop a leaf file from the project.
    # The surviving files whose dependency cone does not include the
    # dropped file must still hit their findings cache.
    keep = [path for path in files if path.name != "__init__.py"]
    before_misses = store.misses
    lint_paths(keep, report_unused_noqa=True, store=store)
    # Phase-1 facts are path+content keyed: every kept file hits.
    assert store.misses - before_misses <= len(files)


def _bench_json(path: str, measured: dict) -> int:
    """Append one ``kind: lint`` row to the shared trajectory file."""
    import json

    from repro import __version__

    row = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "kind": "lint",
        "version": __version__,
        "n_files": measured["n_files"],
        "findings": len(measured["cold_findings"]),
        "cold_s": round(measured["cold_s"], 4),
        "warm_s": round(measured["warm_s"], 4),
        "warm_hits": measured["warm_hits"],
        "warm_misses": measured["warm_misses"],
        "budgets": {"cold_s": COLD_BUDGET_S, "warm_s": WARM_BUDGET_S},
    }
    target = Path(path)
    if target.exists():
        payload = json.loads(target.read_text())
        if payload.get("schema_version") != BENCH_SCHEMA_VERSION:
            print(
                f"BENCH GATE FAILED: {path} has schema_version "
                f"{payload.get('schema_version')!r}, expected "
                f"{BENCH_SCHEMA_VERSION}"
            )
            return 1
    else:
        payload = {"schema_version": BENCH_SCHEMA_VERSION, "rows": []}
    payload["rows"].append(row)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"lint row appended to {path} ({len(payload['rows'])} row(s))")
    return 0


if __name__ == "__main__":
    import argparse
    import sys

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="run the cold/warm pass, gate the budgets")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="append a lint trajectory row to the shared "
                             "BENCH_planner.json file")
    cli_args = parser.parse_args()
    if not cli_args.smoke and not cli_args.json:
        parser.error("this entry point supports --smoke and/or --json; "
                     "use pytest for the full benchmarks")
    with tempfile.TemporaryDirectory() as tmp:
        measured = _measure(tmp)
    for line in _report_lines(measured):
        print(line)
    problems = _gate(measured)
    for problem in problems:
        print(f"BENCH GATE FAILED: {problem}")
    status = 1 if problems else 0
    if status == 0 and cli_args.json:
        status = _bench_json(cli_args.json, measured)
    sys.exit(status)
