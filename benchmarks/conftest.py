"""Shared benchmark fixtures and the paper-vs-measured report.

Benchmark functions emit report lines through the ``report`` fixture; the
collected lines are printed in the terminal summary (so they survive
pytest's output capture) and written to ``bench_report.txt`` at the repo
root for EXPERIMENTS.md bookkeeping.
"""

from __future__ import annotations

from pathlib import Path

import pytest

_LINES: list[str] = []


@pytest.fixture
def report():
    """Emit one paper-vs-measured line into the end-of-run report."""

    def emit(line: str) -> None:
        _LINES.append(line)

    return emit


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _LINES:
        return
    terminalreporter.write_sep("=", "paper-vs-measured report")
    for line in _LINES:
        terminalreporter.write_line(line)
    try:
        Path(config.rootpath, "bench_report.txt").write_text(
            "\n".join(_LINES) + "\n"
        )
    except OSError:
        pass


@pytest.fixture(scope="session")
def mini_sweep_records():
    """The Fig 12 mini design-space sweep, planned once per session."""
    from repro.analysis.designspace import default_mini_sweep, run_sweep

    return run_sweep(default_mini_sweep())


@pytest.fixture(scope="session")
def sample_plans():
    """A handful of full Iris plans reused by the appendix benches."""
    from repro.core.planner import plan_region
    from repro.region.catalog import make_region

    plans = []
    for map_index, n_dcs in ((0, 5), (1, 5), (2, 6), (3, 8)):
        instance = make_region(map_index=map_index, n_dcs=n_dcs, dc_fibers=8)
        plans.append(plan_region(instance.spec))
    return plans


def median(values):
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        raise ValueError("median of empty data")
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def fraction(values, predicate):
    values = list(values)
    return sum(1 for v in values if predicate(v)) / len(values)
