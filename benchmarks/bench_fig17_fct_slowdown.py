"""Fig 17: 99th-percentile FCT slowdown under reconfiguration.

Paper panels sweep utilization {40%, 70%} x change regime {50% bounded,
unbounded} x change interval 1-30 s. Headline: "with the exception of
unbounded intensity changes at high utilization, the effect is minimal,
especially for reconfiguration intervals of 10 sec or above"; bounded
changes stay within ~2% at the 99th percentile.
"""

from repro.simulation.scenarios import ScenarioConfig, run_comparison

INTERVALS = (1.0, 5.0, 10.0, 30.0)


def run_panel(utilization: float, max_change: float | None):
    out = {}
    for interval in INTERVALS:
        config = ScenarioConfig(
            n_dcs=5,
            utilization=utilization,
            duration_s=24.0,
            change_interval_s=interval,
            max_change=max_change,
            seed=17,
        )
        out[interval] = run_comparison(config).summary
    return out


def run_all_panels():
    return {
        (util, change): run_panel(util, change)
        for util in (0.4, 0.7)
        for change in (0.5, None)
    }


def test_fig17_fct_slowdown(benchmark, report):
    panels = benchmark.pedantic(run_all_panels, rounds=1, iterations=1)

    report("Fig 17 99th-pct FCT slowdown (Iris / EPS) vs change interval")
    report(f"        {'panel':<26}" + "".join(f"{i:>7.0f}s" for i in INTERVALS))
    for (util, change), summaries in panels.items():
        label = f"{util * 100:.0f}% util, " + (
            "unbounded" if change is None else f"{change * 100:.0f}% changes"
        )
        row = "".join(f"{summaries[i].p99_all:>8.3f}" for i in INTERVALS)
        report(f"        {label:<26}{row}")
    report("        paper: bounded <=1.02 at all intervals; only unbounded "
           "at short intervals degrades")

    for (util, change), summaries in panels.items():
        if change is not None:
            # Bounded changes: negligible at 10 s+ (we allow 5% slack for
            # the fluid model's sampling noise).
            for interval in (10.0, 30.0):
                assert summaries[interval].p99_all <= 1.05
    # Unbounded at 1 s hurts at least as much as at 30 s (70% panel).
    unbounded = panels[(0.7, None)]
    assert unbounded[1.0].p99_all >= unbounded[30.0].p99_all - 0.05
